//! Multi-dimensional active monotone classification — Theorems 2 and 3.
//!
//! Pipeline (Section 4 of the paper):
//!
//! 1. compute a minimum chain decomposition `C_1 … C_w` (Lemma 6);
//! 2. every monotone classifier maps a *suffix* of each ascending chain to
//!    1, so each chain is a 1D instance: run the Section-3 sampler on each
//!    chain (with per-chain failure budget `δ/w`), obtaining fully-labeled
//!    weighted samples `Σ_1 … Σ_w`;
//! 3. let `Σ = ∪ Σ_i` (equation (30)); the ε-comparison property
//!    (Lemma 14) guarantees that the classifier minimizing `w-err_Σ` has
//!    `err_P ≤ (1+ε)·k*` with probability `≥ 1 − δ`;
//! 4. minimizing `w-err_Σ` over all monotone classifiers is exactly
//!    Problem 2 on Σ — solved by the passive min-cut solver (Theorem 3's
//!    reduction).
//!
//! Probing cost: `O((w/ε²)·log(n/w)·log n)`; CPU time
//! `Õ(d·n² + n^2.5 + w/ε²) + T_prob2(d, |Σ|)`.
//!
//! # Example
//!
//! ```
//! use mc_core::{ActiveSolver, InMemoryOracle};
//! use mc_geom::{Label, LabeledSet};
//!
//! let mut data = LabeledSet::empty(2);
//! for i in 0..50 {
//!     data.push(&[i as f64, (i % 7) as f64], Label::from_bool(i >= 20));
//! }
//! let mut oracle = InMemoryOracle::from_labeled(&data);
//! let sol = ActiveSolver::with_epsilon(0.5).solve(data.points(), &mut oracle);
//! assert!(sol.probes_used <= 50);
//! ```

use crate::active::one_dim::{try_weighted_sample_1d, OneDimParams};
use crate::classifier::MonotoneClassifier;
use crate::error::McError;
use crate::oracle::{FallibleOracle, FallibleSubsetOracle, InfallibleAdapter, LabelOracle};
use crate::passive::solver::{PassiveSolution, PassiveSolver};
use crate::report::SolveReport;
use mc_geom::{DominanceIndex, PointSet, WeightedSet};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

/// Parameters of the active solver.
#[derive(Debug, Clone)]
pub struct ActiveParams {
    /// Approximation slack `ε ∈ (0, 1]`: the returned classifier has
    /// error at most `(1+ε)·k*` with probability `≥ 1 − δ`.
    pub epsilon: f64,
    /// Overall failure probability; `None` selects the paper's `1/n²`.
    pub delta: Option<f64>,
    /// `φ = ε/phi_divisor` in the per-chain sampler (256 = paper
    /// constants, 8 = practical default; see
    /// [`OneDimParams`]).
    pub phi_divisor: f64,
    /// Exhaustive-probing cutoff of the recursion (paper: 7).
    pub recursion_cutoff: usize,
    /// RNG seed (all randomness is reproducible).
    pub seed: u64,
}

impl ActiveParams {
    /// Practical defaults for a given `ε`.
    pub fn new(epsilon: f64) -> Self {
        Self {
            epsilon,
            delta: None,
            phi_divisor: 8.0,
            recursion_cutoff: 7,
            seed: 0x5EED,
        }
    }

    /// The paper's constants (`φ = ε/256`).
    pub fn paper_faithful(epsilon: f64) -> Self {
        Self {
            phi_divisor: 256.0,
            ..Self::new(epsilon)
        }
    }

    /// Replaces the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the failure probability.
    pub fn with_delta(mut self, delta: f64) -> Self {
        self.delta = Some(delta);
        self
    }
}

/// Result of an active solve, including the side products the paper
/// highlights (the weighted sample Σ, the width, phase timings).
#[derive(Debug, Clone)]
pub struct ActiveSolution {
    /// The `(1+ε)`-approximate monotone classifier.
    pub classifier: MonotoneClassifier,
    /// Distinct labels probed (the paper's probing cost).
    pub probes_used: usize,
    /// The fully-labeled weighted sample Σ (Section 3.5 / equation (30)).
    pub sigma: WeightedSet,
    /// Dominance width `w` of the input.
    pub width: usize,
    /// `w-err_Σ` of the returned classifier (the minimized objective).
    pub sigma_weighted_error: f64,
    /// Wall-clock time of the chain decomposition phase.
    pub decomposition_time: Duration,
    /// Wall-clock time of the per-chain sampling phase.
    pub sampling_time: Duration,
    /// Wall-clock time of the passive solve on Σ.
    pub passive_time: Duration,
    /// How the solve fared against the oracle (all-clean for the
    /// infallible entry points).
    pub report: SolveReport,
}

/// The active solver (Problem 1).
#[derive(Debug, Clone)]
pub struct ActiveSolver {
    params: ActiveParams,
}

impl ActiveSolver {
    /// Creates a solver with the given parameters.
    pub fn new(params: ActiveParams) -> Self {
        Self { params }
    }

    /// Convenience constructor with practical defaults.
    pub fn with_epsilon(epsilon: f64) -> Self {
        Self::new(ActiveParams::new(epsilon))
    }

    /// The parameters in use.
    pub fn params(&self) -> &ActiveParams {
        &self.params
    }

    /// Runs the active algorithm on `points` with labels hidden behind
    /// `oracle`. Probing cost is `oracle.probes_used()` minus its value
    /// before the call (also reported in the solution, assuming the
    /// oracle started fresh).
    ///
    /// # Panics
    ///
    /// Panics if `oracle.len() != points.len()` or ε ∉ (0, 1].
    pub fn solve(&self, points: &PointSet, oracle: &mut dyn LabelOracle) -> ActiveSolution {
        let mut adapter = InfallibleAdapter::new(oracle);
        self.try_solve(points, &mut adapter)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Failure-tolerant variant of [`ActiveSolver::solve`]: probes go
    /// through a [`FallibleOracle`]; transient failures are the wrapped
    /// oracle's business (e.g. a [`RetryOracle`](crate::oracle::RetryOracle)
    /// absorbs them), while permanently unanswerable points are dropped
    /// from the sample Σ and the solve continues. The returned
    /// [`ActiveSolution::report`] says whether and how the result
    /// degraded.
    ///
    /// `Err` is reserved for invalid inputs (oracle/points size
    /// mismatch, ε ∉ (0, 1], …); oracle failures never abort the solve.
    pub fn try_solve(
        &self,
        points: &PointSet,
        oracle: &mut dyn FallibleOracle,
    ) -> Result<ActiveSolution, McError> {
        if points.is_empty() {
            return self.try_solve_with_chains(points, &[], oracle);
        }
        let _span = mc_obs::span("active");
        // Phase 1: minimum chain decomposition (Lemma 6, dispatched on
        // dimensionality — see `crate::decompose::minimum_chains`). For
        // d ≥ 3 the decomposition builds a `DominanceIndex` over P; we
        // keep it and later restrict it to Σ for the passive phase
        // instead of recomputing dominances from coordinates.
        let t0 = Instant::now();
        let (chains, index) = crate::decompose::minimum_chains_with_index(points);
        let decomposition_time = t0.elapsed();
        let mut sol = self.solve_with_chains_inner(points, &chains, oracle, index.as_ref())?;
        sol.decomposition_time = decomposition_time;
        Ok(sol)
    }

    /// Runs only the probing phases (chain sampling, Sections 3–4),
    /// returning the fully-labeled weighted sample Σ and the probing cost
    /// without the final passive solve. Useful for probing-cost sweeps at
    /// scales where the `O(|Σ|²)` passive phase would dominate wall-clock
    /// time; [`ActiveSolver::solve_with_chains`] is this plus Theorem 3's
    /// passive reduction.
    pub fn collect_sigma_with_chains(
        &self,
        points: &PointSet,
        chains: &[Vec<usize>],
        oracle: &mut dyn LabelOracle,
    ) -> (WeightedSet, usize) {
        let mut adapter = InfallibleAdapter::new(oracle);
        let partial = self
            .try_sampling_phase(points, chains, &mut adapter)
            .unwrap_or_else(|e| panic!("{e}"));
        (partial.sigma, partial.probes_used)
    }

    /// Like [`ActiveSolver::solve`], but with a caller-supplied chain
    /// decomposition (ascending dominance order within each chain, chains
    /// partitioning `0..points.len()`). Useful when the workload generator
    /// already knows a minimum decomposition, skipping the `O(d·n² +
    /// n^2.5)` Lemma-6 phase; the probing and error guarantees only
    /// require that the supplied chains are valid and minimum.
    ///
    /// # Panics
    ///
    /// Panics if the chains do not partition the point indices (debug
    /// builds additionally verify ascending dominance within chains).
    pub fn solve_with_chains(
        &self,
        points: &PointSet,
        chains: &[Vec<usize>],
        oracle: &mut dyn LabelOracle,
    ) -> ActiveSolution {
        let mut adapter = InfallibleAdapter::new(oracle);
        self.try_solve_with_chains(points, chains, &mut adapter)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Failure-tolerant variant of [`ActiveSolver::solve_with_chains`];
    /// see [`ActiveSolver::try_solve`] for the failure semantics.
    ///
    /// # Panics
    ///
    /// Panics if the chains do not partition the point indices (that is
    /// a caller bug, not an input-data problem).
    pub fn try_solve_with_chains(
        &self,
        points: &PointSet,
        chains: &[Vec<usize>],
        oracle: &mut dyn FallibleOracle,
    ) -> Result<ActiveSolution, McError> {
        let _span = mc_obs::span("active");
        self.solve_with_chains_inner(points, chains, oracle, None)
    }

    fn solve_with_chains_inner(
        &self,
        points: &PointSet,
        chains: &[Vec<usize>],
        oracle: &mut dyn FallibleOracle,
        index: Option<&DominanceIndex>,
    ) -> Result<ActiveSolution, McError> {
        let partial = self.try_sampling_phase(points, chains, oracle)?;

        // Phase 3: minimize w-err_Σ over monotone classifiers = Problem 2
        // on Σ (Theorem 3's reduction to the passive solver). Under
        // degradation Σ is missing the unanswerable points, but it is
        // still a fully-labeled weighted set — the reduction is
        // unaffected and the result stays monotone. When phase 1 built a
        // dominance index over P, restrict it to Σ's rows (Σ ⊆ P) so the
        // passive solver skips its own index build.
        let t2 = Instant::now();
        let solver = PassiveSolver::new();
        let PassiveSolution {
            classifier,
            weighted_error,
            ..
        } = match index {
            Some(idx) if partial.sigma.dim() >= 3 => {
                let sub = idx.subset(&partial.sigma_globals);
                solver.solve_with_index(&partial.sigma, &sub)
            }
            _ => solver.solve(&partial.sigma),
        };
        let passive_time = t2.elapsed();

        Ok(ActiveSolution {
            classifier,
            probes_used: partial.probes_used,
            sigma: partial.sigma,
            width: partial.width,
            sigma_weighted_error: weighted_error,
            decomposition_time: Duration::ZERO,
            sampling_time: partial.sampling_time,
            passive_time,
            report: partial.report,
        })
    }

    fn try_sampling_phase(
        &self,
        points: &PointSet,
        chains: &[Vec<usize>],
        oracle: &mut dyn FallibleOracle,
    ) -> Result<SamplingPhase, McError> {
        if points.len() != oracle.size() {
            return Err(McError::OracleSizeMismatch {
                oracle: oracle.size(),
                points: points.len(),
            });
        }
        let n = points.len();
        let probes_before = oracle.probes_charged();
        let stats_before = oracle.stats();
        if n == 0 {
            return Ok(SamplingPhase {
                sigma: WeightedSet::empty(points.dim().max(1)),
                sigma_globals: Vec::new(),
                probes_used: 0,
                width: 0,
                sampling_time: Duration::ZERO,
                report: SolveReport::default(),
            });
        }
        let covered: usize = chains.iter().map(Vec::len).sum();
        assert_eq!(covered, n, "chains must partition the point indices");
        #[cfg(debug_assertions)]
        for chain in chains {
            for pair in chain.windows(2) {
                debug_assert!(
                    points.dominates(pair[1], pair[0]),
                    "chains must be ascending in dominance order"
                );
            }
        }
        let w = chains.len();

        // Overall failure budget δ (paper default 1/n²), split evenly
        // over the w chains as in Section 4.1.
        let delta = self
            .params
            .delta
            .unwrap_or_else(|| 1.0 / ((n * n) as f64).max(4.0));
        let delta_chain = delta / w as f64;

        // Phase 2: per-chain 1D sampling (Section 3 via Lemma 13).
        // Σ entries landing on the same point are merged (weights summed)
        // — equivalent for w-err_Σ and it keeps the passive solve small.
        let span = mc_obs::span("sampling");
        mc_obs::gauge_set("sampling.epsilon", self.params.epsilon);
        mc_obs::gauge_set("sampling.delta_per_chain", delta_chain);
        let t1 = Instant::now();
        let mut rng = StdRng::seed_from_u64(self.params.seed);
        let mut report = SolveReport::default();
        let mut merged: Vec<Option<(mc_geom::Label, f64)>> = vec![None; n];
        let one_dim_params = OneDimParams {
            epsilon: self.params.epsilon,
            delta: delta_chain.clamp(f64::MIN_POSITIVE, 1.0),
            phi_divisor: self.params.phi_divisor,
            recursion_cutoff: self.params.recursion_cutoff,
        };
        let mut total_draws = 0u64;
        for (c, chain) in chains.iter().enumerate() {
            let attempts_before = report.attempts;
            let mut chain_oracle = FallibleSubsetOracle::new(oracle, chain);
            let sample =
                try_weighted_sample_1d(&mut chain_oracle, &one_dim_params, &mut rng, &mut report)?;
            let chain_probes = (report.attempts - attempts_before) as u64;
            total_draws += sample.draws as u64;
            mc_obs::record("sampling.probes_per_chain", chain_probes);
            mc_obs::record("sampling.levels_per_chain", sample.levels as u64);
            mc_obs::debug_event(
                "chain_sampled",
                &[
                    ("chain", mc_obs::json::Value::U(c as u64)),
                    ("len", mc_obs::json::Value::U(chain.len() as u64)),
                    ("probes", mc_obs::json::Value::U(chain_probes)),
                    ("levels", mc_obs::json::Value::U(sample.levels as u64)),
                    ("draws", mc_obs::json::Value::U(sample.draws as u64)),
                    (
                        "sigma_entries",
                        mc_obs::json::Value::U(sample.sigma.len() as u64),
                    ),
                ],
            );
            for entry in sample.sigma {
                let global = chain[entry.position];
                match &mut merged[global] {
                    Some((label, weight)) => {
                        debug_assert_eq!(*label, entry.label, "oracle labels are stable");
                        *weight += entry.weight;
                    }
                    slot @ None => *slot = Some((entry.label, entry.weight)),
                }
            }
        }
        let mut sigma = WeightedSet::empty(points.dim());
        let mut sigma_globals = Vec::new();
        for (global, slot) in merged.iter().enumerate() {
            if let Some((label, weight)) = slot {
                sigma.push(points.point(global), *label, *weight);
                sigma_globals.push(global);
            }
        }
        let sampling_time = t1.elapsed();
        report.finalize(&stats_before, &oracle.stats());
        drop(span);

        // Fed from the *finalized* report so the exported counters
        // reconcile exactly with `SolveReport` (oracle.attempts ==
        // report.attempts for a single solve after a reset).
        mc_obs::counter_add("sampling.chains", w as u64);
        mc_obs::counter_add("sampling.draws", total_draws);
        mc_obs::counter_add("sampling.sigma_points", sigma.len() as u64);
        mc_obs::counter_add("oracle.attempts", report.attempts as u64);
        mc_obs::counter_add("oracle.retries", report.retries as u64);
        mc_obs::counter_add("oracle.abstentions", report.abstentions as u64);
        if report.breaker_tripped {
            mc_obs::event("oracle.breaker_tripped", &[]);
        }
        if report.degraded {
            mc_obs::event("oracle.degraded", &[]);
        }

        Ok(SamplingPhase {
            sigma,
            sigma_globals,
            probes_used: oracle.probes_charged() - probes_before,
            width: w,
            sampling_time,
            report,
        })
    }
}

/// Intermediate result of the probing phases (before the passive solve).
struct SamplingPhase {
    sigma: WeightedSet,
    /// `sigma_globals[i]` is the index into the input point set of
    /// `sigma`'s `i`-th row — the map needed to restrict a
    /// [`DominanceIndex`] on P down to Σ.
    sigma_globals: Vec<usize>,
    probes_used: usize,
    width: usize,
    sampling_time: Duration,
    report: SolveReport,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::InMemoryOracle;
    use crate::passive::solve_passive;
    use mc_geom::{Label, LabeledSet};
    use rand::Rng;

    /// Planted 2D monotone concept with optional label noise.
    fn planted_2d(n: usize, noise: f64, seed: u64) -> LabeledSet {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ls = LabeledSet::empty(2);
        for _ in 0..n {
            let x: f64 = rng.gen_range(0.0..1.0);
            let y: f64 = rng.gen_range(0.0..1.0);
            let clean = x + y > 1.0;
            let flipped = rng.gen_bool(noise);
            ls.push(&[x, y], Label::from_bool(clean != flipped));
        }
        ls
    }

    fn optimal_error(ls: &LabeledSet) -> f64 {
        solve_passive(&ls.with_unit_weights()).weighted_error
    }

    #[test]
    fn clean_concept_recovered_exactly() {
        let ls = planted_2d(400, 0.0, 42);
        let mut oracle = InMemoryOracle::from_labeled(&ls);
        let solver = ActiveSolver::with_epsilon(0.5);
        let sol = solver.solve(ls.points(), &mut oracle);
        // k* = 0 for clean data, so the classifier must be perfect (whp).
        assert_eq!(sol.classifier.error_on(&ls), 0);
        assert_eq!(sol.probes_used, oracle.probes_used());
    }

    #[test]
    fn noisy_concept_within_one_plus_epsilon() {
        let eps = 1.0;
        let mut successes = 0;
        for seed in 0..5 {
            let ls = planted_2d(500, 0.05, 100 + seed);
            let k_star = optimal_error(&ls);
            let mut oracle = InMemoryOracle::from_labeled(&ls);
            let solver = ActiveSolver::new(ActiveParams::new(eps).with_seed(seed));
            let sol = solver.solve(ls.points(), &mut oracle);
            let err = sol.classifier.error_on(&ls) as f64;
            if err <= (1.0 + eps) * k_star + 1e-9 {
                successes += 1;
            }
        }
        assert!(successes >= 4, "only {successes}/5 runs met (1+ε)k*");
    }

    #[test]
    fn width_reported_matches_decomposition() {
        let ls = planted_2d(200, 0.1, 7);
        let mut oracle = InMemoryOracle::from_labeled(&ls);
        let sol = ActiveSolver::with_epsilon(0.5).solve(ls.points(), &mut oracle);
        assert_eq!(sol.width, mc_chains::dominance_width(ls.points()));
    }

    #[test]
    fn empty_input() {
        let ls = LabeledSet::empty(2);
        let mut oracle = InMemoryOracle::from_labeled(&ls);
        let sol = ActiveSolver::with_epsilon(0.5).solve(ls.points(), &mut oracle);
        assert_eq!(sol.probes_used, 0);
        assert_eq!(sol.width, 0);
    }

    #[test]
    fn single_point() {
        let mut ls = LabeledSet::empty(3);
        ls.push(&[1.0, 2.0, 3.0], Label::One);
        let mut oracle = InMemoryOracle::from_labeled(&ls);
        let sol = ActiveSolver::with_epsilon(0.5).solve(ls.points(), &mut oracle);
        assert_eq!(sol.probes_used, 1);
        assert_eq!(sol.classifier.error_on(&ls), 0);
    }

    #[test]
    fn probes_bounded_by_n() {
        let ls = planted_2d(300, 0.2, 9);
        let mut oracle = InMemoryOracle::from_labeled(&ls);
        let sol = ActiveSolver::with_epsilon(0.5).solve(ls.points(), &mut oracle);
        assert!(sol.probes_used <= 300);
    }

    #[test]
    fn deterministic_given_seed() {
        let ls = planted_2d(250, 0.1, 3);
        let run = || {
            let mut oracle = InMemoryOracle::from_labeled(&ls);
            let solver = ActiveSolver::new(ActiveParams::new(0.5).with_seed(77));
            let sol = solver.solve(ls.points(), &mut oracle);
            (sol.probes_used, sol.classifier.clone())
        };
        let (p1, c1) = run();
        let (p2, c2) = run();
        assert_eq!(p1, p2);
        assert_eq!(c1, c2);
    }

    #[test]
    fn transient_failures_do_not_change_the_answer() {
        use crate::oracle::{FlakyOracle, RetryOracle, RetryPolicy};
        // 30% of calls fail transiently; with retries the solve must
        // produce the *same* classifier as the fault-free run (the RNG
        // draws are solver-side and unaffected by retries).
        let ls = planted_2d(300, 0.05, 13);
        let solver = ActiveSolver::new(ActiveParams::new(0.5).with_seed(7));

        let mut clean_oracle = InMemoryOracle::from_labeled(&ls);
        let clean = solver.solve(ls.points(), &mut clean_oracle);

        let flaky = FlakyOracle::from_labeled(&ls, 0.3, 99);
        let mut retrying = RetryOracle::new(flaky, RetryPolicy::default().with_max_attempts(20));
        let faulty = solver.try_solve(ls.points(), &mut retrying).unwrap();

        assert_eq!(clean.classifier, faulty.classifier);
        assert_eq!(clean.probes_used, faulty.probes_used);
        assert!(faulty.report.retries > 0, "30% failures must cause retries");
        assert_eq!(faulty.report.abstentions, 0);
        assert!(!faulty.report.degraded);
        assert!(clean.report.is_clean());
    }

    #[test]
    fn abstentions_degrade_gracefully() {
        use crate::classifier::find_monotonicity_violation;
        use crate::oracle::AbstainingOracle;
        let ls = planted_2d(300, 0.05, 17);
        let mut oracle = AbstainingOracle::from_labeled(&ls, 0.1, 5);
        assert!(oracle.unanswerable() > 0);
        let solver = ActiveSolver::with_epsilon(0.5);
        let sol = solver.try_solve(ls.points(), &mut oracle).unwrap();
        assert!(sol.report.degraded);
        assert!(sol.report.abstentions > 0);
        // The degraded classifier is still monotone and Σ contains no
        // unanswerable point.
        assert!(find_monotonicity_violation(
            ls.points(),
            &sol.classifier.classify_set(ls.points())
        )
        .is_none());
        for i in 0..sol.sigma.len() {
            let coords = sol.sigma.points().point(i);
            let j = (0..ls.len())
                .find(|&j| ls.points().point(j) == coords)
                .unwrap();
            assert!(!oracle.is_unanswerable(j));
        }
    }

    #[test]
    fn dead_oracle_trips_breaker_and_still_returns() {
        use crate::oracle::{FlakyOracle, RetryOracle, RetryPolicy};
        let ls = planted_2d(200, 0.0, 23);
        let flaky = FlakyOracle::from_labeled(&ls, 1.0, 3); // everything fails
        let mut retrying = RetryOracle::new(
            flaky,
            RetryPolicy::default()
                .with_max_attempts(3)
                .with_breaker_threshold(10),
        );
        let sol = ActiveSolver::with_epsilon(0.5)
            .try_solve(ls.points(), &mut retrying)
            .unwrap();
        assert!(sol.report.breaker_tripped);
        assert!(sol.report.degraded);
        assert_eq!(sol.probes_used, 0);
        // The all-zero fallback is trivially monotone.
        assert!(sol.sigma.is_empty());
    }

    #[test]
    fn try_solve_rejects_size_mismatch() {
        let ls = planted_2d(10, 0.0, 1);
        let mut oracle = InMemoryOracle::new(vec![mc_geom::Label::One; 3]);
        let err = ActiveSolver::with_epsilon(0.5)
            .try_solve(ls.points(), &mut oracle)
            .unwrap_err();
        assert!(matches!(
            err,
            crate::error::McError::OracleSizeMismatch {
                oracle: 3,
                points: 10
            }
        ));
    }

    #[test]
    fn sigma_labels_match_ground_truth() {
        let ls = planted_2d(200, 0.15, 5);
        let mut oracle = InMemoryOracle::from_labeled(&ls);
        let sol = ActiveSolver::with_epsilon(1.0).solve(ls.points(), &mut oracle);
        // Every Σ entry's label must agree with the hidden ground truth
        // at its coordinates (entries are actual probed points).
        for i in 0..sol.sigma.len() {
            let coords = sol.sigma.points().point(i);
            let truth = (0..ls.len()).find(|&j| ls.points().point(j) == coords);
            let j = truth.expect("Σ point must come from the input set");
            assert_eq!(sol.sigma.label(i), ls.label(j));
        }
    }
}
