//! Baseline active strategies used in the experiments (E1, E10).
//!
//! * [`probe_all`] — the naive exact algorithm: probe every label, then
//!   solve Problem 2. Theorem 1 proves this is already asymptotically
//!   optimal among *exact* algorithms.
//! * [`uniform_sample`] — a width-oblivious passive-learning baseline:
//!   probe a fixed budget of uniform labels, importance-weight them by
//!   `n/budget`, and solve Problem 2 on the sample. Stands in for the
//!   `Θ(1/ε²)`-style sampling cost of disagreement-based learners such
//!   as A² without their width-adaptivity (see DESIGN.md).
//! * [`chain_binary_search`] — a reimplementation of the probing profile
//!   of Tao'18 \[25\]: one binary search per chain (`O(w·log(n/w))`
//!   probes), which is probe-frugal but only weakly error-controlled —
//!   exactly the gap Theorem 2 closes.
//!
//! # Example
//!
//! ```
//! use mc_core::baselines::probe_all;
//! use mc_core::{InMemoryOracle, LabelOracle};
//! use mc_geom::{Label, LabeledSet};
//!
//! let mut data = LabeledSet::empty(1);
//! for i in 0..8 {
//!     data.push(&[i as f64], Label::from_bool(i >= 3));
//! }
//! let mut oracle = InMemoryOracle::from_labeled(&data);
//! let sol = probe_all(data.points(), &mut oracle);
//! assert_eq!(sol.probes_used, 8);
//! assert_eq!(sol.classifier.error_on(&data), 0);
//! ```

use crate::classifier::MonotoneClassifier;
use crate::oracle::LabelOracle;
use crate::passive::solver::solve_passive;
use mc_geom::{Label, PointSet, WeightedSet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Outcome of a baseline run.
#[derive(Debug, Clone)]
pub struct BaselineSolution {
    /// The produced monotone classifier.
    pub classifier: MonotoneClassifier,
    /// Distinct labels probed.
    pub probes_used: usize,
}

/// Probes every label and solves Problem 2 exactly. Always returns an
/// optimal classifier at probing cost `n`.
pub fn probe_all(points: &PointSet, oracle: &mut dyn LabelOracle) -> BaselineSolution {
    let before = oracle.probes_used();
    let mut data = WeightedSet::empty(points.dim().max(1));
    for i in 0..points.len() {
        let label = oracle.probe(i);
        data.push(points.point(i), label, 1.0);
    }
    let sol = solve_passive(&data);
    BaselineSolution {
        classifier: sol.classifier,
        probes_used: oracle.probes_used() - before,
    }
}

/// Probes `budget` uniform draws (with replacement; distinct points
/// billed once), weights each draw by `n/budget`, and solves Problem 2 on
/// the weighted sample.
pub fn uniform_sample(
    points: &PointSet,
    oracle: &mut dyn LabelOracle,
    budget: usize,
    seed: u64,
) -> BaselineSolution {
    let n = points.len();
    let before = oracle.probes_used();
    if n == 0 || budget == 0 {
        return BaselineSolution {
            classifier: MonotoneClassifier::all_zero(points.dim().max(1)),
            probes_used: 0,
        };
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let weight = n as f64 / budget as f64;
    let mut sample = WeightedSet::empty(points.dim());
    for _ in 0..budget {
        let i = rng.gen_range(0..n);
        let label = oracle.probe(i);
        sample.push(points.point(i), label, weight);
    }
    let sol = solve_passive(&sample);
    BaselineSolution {
        classifier: sol.classifier,
        probes_used: oracle.probes_used() - before,
    }
}

/// Binary-searches one label boundary per chain, then up-closes the
/// per-chain positive suffixes into a monotone classifier.
///
/// On each ascending chain the search maintains an invariant-free
/// heuristic: probe the middle point; a 1-label moves the boundary down,
/// a 0-label moves it up. On monotone-within-chain labelings this finds
/// the exact boundary with `⌈log₂ m⌉` probes; under label noise it lands
/// near *a* boundary, with no `(1+ε)` guarantee — matching the weaker,
/// expectation-only error behaviour of the prior work it stands in for.
pub fn chain_binary_search(points: &PointSet, oracle: &mut dyn LabelOracle) -> BaselineSolution {
    let before = oracle.probes_used();
    if points.is_empty() {
        return BaselineSolution {
            classifier: MonotoneClassifier::all_zero(points.dim().max(1)),
            probes_used: 0,
        };
    }
    let chains = crate::decompose::minimum_chains(points);
    let mut anchors: Vec<Vec<f64>> = Vec::new();
    for chain in &chains {
        // Find the smallest position whose probe returns 1, binary-search
        // style (exact if the chain's labels are monotone).
        let mut lo = 0usize;
        let mut hi = chain.len();
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            match oracle.probe(chain[mid]) {
                Label::One => hi = mid,
                Label::Zero => lo = mid + 1,
            }
        }
        if lo < chain.len() {
            anchors.push(points.point(chain[lo]).to_vec());
        }
    }
    BaselineSolution {
        classifier: MonotoneClassifier::from_anchors(points.dim(), anchors),
        probes_used: oracle.probes_used() - before,
    }
}

/// CAL-style disagreement-based active learning, specialized to monotone
/// classifiers (the realizable-case ancestor of the A² algorithm the
/// paper compares against).
///
/// The *version space* after a set of probed labels is the set of
/// monotone classifiers consistent with them; a point is in the
/// *disagreement region* iff consistent classifiers disagree on it,
/// which for monotone classifiers has a closed form:
///
/// * forced to 1 — it dominates a probed 1-point;
/// * forced to 0 — it is dominated by a probed 0-point;
/// * otherwise, in disagreement.
///
/// The learner repeatedly probes a uniform point of the disagreement
/// region; on *realizable* data (`k* = 0`) the region only shrinks and
/// the result is exactly optimal, typically at far fewer than `n`
/// probes. On noisy data the premises fail — probed labels may force
/// contradictions — so the learner stops when a contradiction appears
/// (or the region empties / `max_probes` is hit) and falls back to a
/// passive solve on everything probed so far. This brittleness is
/// precisely why the agnostic A² needs its machinery, and why the
/// paper's `Õ(w/ε²)` algorithm improves on `A²`'s `Ω(w²/ε²)`.
pub fn cal_disagreement(
    points: &PointSet,
    oracle: &mut dyn LabelOracle,
    max_probes: usize,
    seed: u64,
) -> BaselineSolution {
    let n = points.len();
    let before = oracle.probes_used();
    if n == 0 || max_probes == 0 {
        return BaselineSolution {
            classifier: MonotoneClassifier::all_zero(points.dim().max(1)),
            probes_used: 0,
        };
    }
    let mut rng = StdRng::seed_from_u64(seed);
    // Probed labels so far.
    let mut probed: Vec<Option<Label>> = vec![None; n];
    // Forcing state: 0 = unknown, 1 = forced one, 2 = forced zero.
    let mut forced = vec![0u8; n];
    let mut disagreement: Vec<usize> = (0..n).collect();
    let mut contradiction = false;

    while !disagreement.is_empty() && oracle.probes_used() - before < max_probes {
        let pick = rng.gen_range(0..disagreement.len());
        let i = disagreement[pick];
        let label = oracle.probe(i);
        probed[i] = Some(label);
        // Propagate forcing from the new label.
        #[allow(clippy::needless_range_loop)] // j indexes `forced` and `points`
        for j in 0..n {
            let newly_forced = match label {
                Label::One => points.dominates(j, i),
                Label::Zero => points.dominates(i, j),
            };
            if newly_forced {
                let want = if label.is_one() { 1 } else { 2 };
                if forced[j] != 0 && forced[j] != want {
                    contradiction = true;
                }
                forced[j] = want;
            }
        }
        if contradiction {
            break;
        }
        disagreement.retain(|&j| forced[j] == 0);
    }

    // Fit on everything probed (exact when realizable and the region
    // emptied; best-effort otherwise).
    let mut sample = WeightedSet::empty(points.dim());
    for (i, label) in probed.iter().enumerate() {
        if let Some(label) = label {
            sample.push(points.point(i), *label, 1.0);
        }
    }
    let classifier = if sample.is_empty() {
        MonotoneClassifier::all_zero(points.dim())
    } else {
        solve_passive(&sample).classifier
    };
    BaselineSolution {
        classifier,
        probes_used: oracle.probes_used() - before,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::InMemoryOracle;
    use mc_geom::LabeledSet;

    fn staircase(n: usize) -> LabeledSet {
        // 1D staircase: clean threshold at n/2.
        let mut ls = LabeledSet::empty(1);
        for i in 0..n {
            ls.push(&[i as f64], Label::from_bool(i >= n / 2));
        }
        ls
    }

    #[test]
    fn probe_all_is_exact() {
        let ls = staircase(20);
        let mut oracle = InMemoryOracle::from_labeled(&ls);
        let sol = probe_all(ls.points(), &mut oracle);
        assert_eq!(sol.probes_used, 20);
        assert_eq!(sol.classifier.error_on(&ls), 0);
    }

    #[test]
    fn chain_binary_search_exact_on_clean_chain() {
        let ls = staircase(64);
        let mut oracle = InMemoryOracle::from_labeled(&ls);
        let sol = chain_binary_search(ls.points(), &mut oracle);
        assert_eq!(sol.classifier.error_on(&ls), 0);
        assert!(
            sol.probes_used <= 7,
            "binary search should use ≤ ⌈log₂ 64⌉ + 1 probes, used {}",
            sol.probes_used
        );
    }

    #[test]
    fn chain_binary_search_all_zeros_chain() {
        let mut ls = LabeledSet::empty(1);
        for i in 0..10 {
            ls.push(&[i as f64], Label::Zero);
        }
        let mut oracle = InMemoryOracle::from_labeled(&ls);
        let sol = chain_binary_search(ls.points(), &mut oracle);
        assert_eq!(sol.classifier.error_on(&ls), 0);
    }

    #[test]
    fn uniform_sample_respects_budget() {
        let ls = staircase(100);
        let mut oracle = InMemoryOracle::from_labeled(&ls);
        let sol = uniform_sample(ls.points(), &mut oracle, 30, 1);
        assert!(sol.probes_used <= 30);
        // On clean 1D data even a modest sample usually nails a
        // low-error threshold; just require monotone output validity.
        let err = sol.classifier.error_on(&ls);
        assert!(err <= 20, "uniform sample error unexpectedly high: {err}");
    }

    #[test]
    fn baselines_handle_empty_input() {
        let ls = LabeledSet::empty(2);
        let mut oracle = InMemoryOracle::from_labeled(&ls);
        assert_eq!(probe_all(ls.points(), &mut oracle).probes_used, 0);
        assert_eq!(
            uniform_sample(ls.points(), &mut oracle, 10, 0).probes_used,
            0
        );
        assert_eq!(chain_binary_search(ls.points(), &mut oracle).probes_used, 0);
    }

    #[test]
    fn cal_exact_on_realizable_data() {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(21);
        let mut ls = LabeledSet::empty(2);
        for _ in 0..400 {
            let x: f64 = rng.gen_range(0.0..1.0);
            let y: f64 = rng.gen_range(0.0..1.0);
            ls.push(&[x, y], Label::from_bool(x + y > 1.0));
        }
        let mut oracle = InMemoryOracle::from_labeled(&ls);
        let sol = cal_disagreement(ls.points(), &mut oracle, 400, 3);
        assert_eq!(
            sol.classifier.error_on(&ls),
            0,
            "realizable CAL must be exact"
        );
        assert!(
            sol.probes_used < 400,
            "CAL should not need every label on realizable data ({} used)",
            sol.probes_used
        );
    }

    #[test]
    fn cal_respects_probe_cap() {
        let ls = staircase(200);
        let mut oracle = InMemoryOracle::from_labeled(&ls);
        let sol = cal_disagreement(ls.points(), &mut oracle, 10, 1);
        assert!(sol.probes_used <= 10);
    }

    #[test]
    fn cal_survives_noise() {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(22);
        let mut ls = LabeledSet::empty(1);
        for i in 0..100 {
            let clean = i >= 40;
            let flip = rng.gen_bool(0.2);
            ls.push(&[i as f64], Label::from_bool(clean != flip));
        }
        let mut oracle = InMemoryOracle::from_labeled(&ls);
        let sol = cal_disagreement(ls.points(), &mut oracle, 100, 5);
        // No guarantee under noise — only that it terminates and returns
        // a (monotone-by-construction) classifier at bounded cost.
        assert!(sol.probes_used <= 100);
        let _ = sol.classifier.error_on(&ls);
    }

    #[test]
    fn cal_empty_and_zero_budget() {
        let ls = LabeledSet::empty(2);
        let mut oracle = InMemoryOracle::from_labeled(&ls);
        assert_eq!(
            cal_disagreement(ls.points(), &mut oracle, 10, 0).probes_used,
            0
        );
        let ls = staircase(5);
        let mut oracle = InMemoryOracle::from_labeled(&ls);
        assert_eq!(
            cal_disagreement(ls.points(), &mut oracle, 0, 0).probes_used,
            0
        );
    }

    #[test]
    fn chain_search_multi_dim_produces_monotone_classifier() {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(12);
        let mut ls = LabeledSet::empty(2);
        for _ in 0..120 {
            let x: f64 = rng.gen_range(0.0..1.0);
            let y: f64 = rng.gen_range(0.0..1.0);
            ls.push(&[x, y], Label::from_bool(x + y > 1.0));
        }
        let mut oracle = InMemoryOracle::from_labeled(&ls);
        let sol = chain_binary_search(ls.points(), &mut oracle);
        // Monotone by construction; error should be small on clean data.
        let err = sol.classifier.error_on(&ls);
        assert!(err <= 12, "error {err} too high for clean data");
        assert!(sol.probes_used < 120);
    }
}
