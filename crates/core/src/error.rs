//! Typed errors for the solver-facing API.
//!
//! [`McError`] is the error type of every `try_*` entry point in this
//! crate: input validation failures (delegated to
//! [`GeomError`]), oracle/input mismatches, bad
//! parameters, and fatal oracle failures. The CLI maps each class to a
//! distinct exit code.

use crate::oracle::OracleError;
use mc_geom::GeomError;
use std::fmt;

/// An error from a fallible solver entry point.
#[derive(Debug, Clone, PartialEq)]
pub enum McError {
    /// Invalid geometric input (dimension mismatch, non-finite
    /// coordinate, non-positive weight, length mismatch).
    Geom(GeomError),
    /// A fatal oracle failure that the solver could not degrade around.
    Oracle(OracleError),
    /// The oracle does not cover exactly the input points.
    OracleSizeMismatch {
        /// Points behind the oracle.
        oracle: usize,
        /// Points in the input set.
        points: usize,
    },
    /// A parameter is out of range (ε, δ, φ divisor, …).
    InvalidParameter {
        /// Human-readable description, e.g. `"ε must lie in (0, 1], got 2"`.
        message: String,
    },
    /// A memory budget refusal: the requested path would materialize a
    /// dominator matrix larger than `MC_MATRIX_BUDGET_BYTES`. Typed so
    /// callers (and the CLI, exit code 8) can distinguish "refused up
    /// front" from an OOM kill; the fix is the matrix-free rank-oracle
    /// path, which never builds the matrix.
    Budget {
        /// Points the refused matrix would have covered.
        points: usize,
        /// Bytes the matrix would need.
        required_bytes: u64,
        /// The configured budget.
        budget_bytes: u64,
    },
    /// The solve exceeded its deadline and stopped at a cooperative
    /// cancellation checkpoint ([`mc_obs::CancelCause::Deadline`]).
    Timeout,
    /// The solve was cancelled explicitly — e.g. a portfolio race
    /// stopping a losing engine ([`mc_obs::CancelCause::Explicit`]).
    Cancelled,
}

impl McError {
    /// Convenience constructor for [`McError::InvalidParameter`].
    pub fn invalid_parameter(message: impl Into<String>) -> Self {
        McError::InvalidParameter {
            message: message.into(),
        }
    }
}

impl fmt::Display for McError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            McError::Geom(e) => e.fmt(f),
            McError::Oracle(e) => e.fmt(f),
            McError::OracleSizeMismatch { oracle, points } => write!(
                f,
                "oracle must cover exactly the input points: oracle has {oracle}, input has {points}"
            ),
            McError::InvalidParameter { message } => f.write_str(message),
            McError::Budget {
                points,
                required_bytes,
                budget_bytes,
            } => write!(
                f,
                "refusing to build a {points}×{points} dominator matrix: it needs \
                 {required_bytes} bytes but MC_MATRIX_BUDGET_BYTES is {budget_bytes} \
                 (use the matrix-free rank-oracle path)"
            ),
            McError::Timeout => f.write_str("solve deadline expired"),
            McError::Cancelled => f.write_str("solve cancelled"),
        }
    }
}

impl std::error::Error for McError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            McError::Geom(e) => Some(e),
            McError::Oracle(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GeomError> for McError {
    fn from(e: GeomError) -> Self {
        match e {
            // A budget refusal is an operational limit, not bad data:
            // surface it as its own class so scripts don't confuse it
            // with a malformed input.
            GeomError::MatrixBudget {
                points,
                required_bytes,
                budget_bytes,
            } => McError::Budget {
                points,
                required_bytes,
                budget_bytes,
            },
            other => McError::Geom(other),
        }
    }
}

impl From<OracleError> for McError {
    fn from(e: OracleError) -> Self {
        McError::Oracle(e)
    }
}

impl From<mc_obs::Cancelled> for McError {
    fn from(e: mc_obs::Cancelled) -> Self {
        match e.cause {
            mc_obs::CancelCause::Deadline => McError::Timeout,
            mc_obs::CancelCause::Explicit => McError::Cancelled,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_specific() {
        let e = McError::OracleSizeMismatch {
            oracle: 3,
            points: 5,
        };
        assert!(e.to_string().contains("oracle must cover exactly"));
        let e = McError::invalid_parameter("ε must lie in (0, 1], got 2");
        assert_eq!(e.to_string(), "ε must lie in (0, 1], got 2");
        let e: McError = GeomError::ZeroDimension.into();
        assert_eq!(e.to_string(), "dimensionality must be at least 1");
        let e: McError = OracleError::Abstain { probe: 4 }.into();
        assert_eq!(e.to_string(), "oracle abstained on point 4");
        assert_eq!(McError::Timeout.to_string(), "solve deadline expired");
        assert_eq!(McError::Cancelled.to_string(), "solve cancelled");
        let e = McError::Budget {
            points: 10_000,
            required_bytes: 12_520_000,
            budget_bytes: 1_000_000,
        };
        assert!(e.to_string().contains("10000×10000"));
        assert!(e.to_string().contains("MC_MATRIX_BUDGET_BYTES"));
    }

    #[test]
    fn matrix_budget_geom_error_maps_to_budget_class() {
        let e: McError = GeomError::MatrixBudget {
            points: 7,
            required_bytes: 100,
            budget_bytes: 10,
        }
        .into();
        assert_eq!(
            e,
            McError::Budget {
                points: 7,
                required_bytes: 100,
                budget_bytes: 10,
            }
        );
        // Other geom errors keep their class.
        let e: McError = GeomError::ZeroDimension.into();
        assert!(matches!(e, McError::Geom(_)));
    }

    #[test]
    fn cancellation_causes_map_to_distinct_variants() {
        let token = mc_obs::CancelToken::new();
        token.cancel();
        let e: McError = token.poll().unwrap_err().into();
        assert_eq!(e, McError::Cancelled);
        let token = mc_obs::CancelToken::with_deadline(std::time::Duration::ZERO);
        let e: McError = token.poll().unwrap_err().into();
        assert_eq!(e, McError::Timeout);
    }

    #[test]
    fn sources_chain() {
        use std::error::Error;
        let e: McError = GeomError::ZeroDimension.into();
        assert!(e.source().is_some());
        assert!(McError::invalid_parameter("x").source().is_none());
    }
}
