//! Typed errors for the solver-facing API.
//!
//! [`McError`] is the error type of every `try_*` entry point in this
//! crate: input validation failures (delegated to
//! [`GeomError`]), oracle/input mismatches, bad
//! parameters, and fatal oracle failures. The CLI maps each class to a
//! distinct exit code.

use crate::oracle::OracleError;
use mc_geom::GeomError;
use std::fmt;

/// An error from a fallible solver entry point.
#[derive(Debug, Clone, PartialEq)]
pub enum McError {
    /// Invalid geometric input (dimension mismatch, non-finite
    /// coordinate, non-positive weight, length mismatch).
    Geom(GeomError),
    /// A fatal oracle failure that the solver could not degrade around.
    Oracle(OracleError),
    /// The oracle does not cover exactly the input points.
    OracleSizeMismatch {
        /// Points behind the oracle.
        oracle: usize,
        /// Points in the input set.
        points: usize,
    },
    /// A parameter is out of range (ε, δ, φ divisor, …).
    InvalidParameter {
        /// Human-readable description, e.g. `"ε must lie in (0, 1], got 2"`.
        message: String,
    },
}

impl McError {
    /// Convenience constructor for [`McError::InvalidParameter`].
    pub fn invalid_parameter(message: impl Into<String>) -> Self {
        McError::InvalidParameter {
            message: message.into(),
        }
    }
}

impl fmt::Display for McError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            McError::Geom(e) => e.fmt(f),
            McError::Oracle(e) => e.fmt(f),
            McError::OracleSizeMismatch { oracle, points } => write!(
                f,
                "oracle must cover exactly the input points: oracle has {oracle}, input has {points}"
            ),
            McError::InvalidParameter { message } => f.write_str(message),
        }
    }
}

impl std::error::Error for McError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            McError::Geom(e) => Some(e),
            McError::Oracle(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GeomError> for McError {
    fn from(e: GeomError) -> Self {
        McError::Geom(e)
    }
}

impl From<OracleError> for McError {
    fn from(e: OracleError) -> Self {
        McError::Oracle(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_specific() {
        let e = McError::OracleSizeMismatch {
            oracle: 3,
            points: 5,
        };
        assert!(e.to_string().contains("oracle must cover exactly"));
        let e = McError::invalid_parameter("ε must lie in (0, 1], got 2");
        assert_eq!(e.to_string(), "ε must lie in (0, 1], got 2");
        let e: McError = GeomError::ZeroDimension.into();
        assert_eq!(e.to_string(), "dimensionality must be at least 1");
        let e: McError = OracleError::Abstain { probe: 4 }.into();
        assert_eq!(e.to_string(), "oracle abstained on point 4");
    }

    #[test]
    fn sources_chain() {
        use std::error::Error;
        let e: McError = GeomError::ZeroDimension.into();
        assert!(e.source().is_some());
        assert!(McError::invalid_parameter("x").source().is_none());
    }
}
