//! Monotone classifiers.
//!
//! A classifier `h : R^d -> {0, 1}` is *monotone* if `h(p) >= h(q)`
//! whenever `p` dominates `q` (Section 1.1 of the paper). Every monotone
//! classifier is the indicator of an *up-set*; on finite data it is fully
//! determined by the minimal points of its positive region. We therefore
//! represent classifiers by a set of **anchors**: `h(x) = 1` iff `x`
//! dominates (reflexively) at least one anchor. This makes monotonicity
//! hold *by construction* — an invalid monotone classifier is
//! unrepresentable.
//!
//! The paper's 1D threshold classifiers `h^τ` (equation (6)) map `p → 1`
//! iff `p > τ`; [`MonotoneClassifier::threshold_1d`] realizes them with a
//! single anchor just above `τ` (exact on any dataset whose values differ
//! from the chosen anchor boundary; see the method docs).
//!
//! # Example
//!
//! ```
//! use mc_core::MonotoneClassifier;
//! use mc_geom::Label;
//!
//! let h = MonotoneClassifier::from_anchors(2, vec![vec![0.5, 0.5]]);
//! assert_eq!(h.classify(&[0.6, 0.9]), Label::One);
//! assert_eq!(h.classify(&[0.6, 0.4]), Label::Zero);
//! ```

use mc_geom::{dominates, Label, LabeledSet, PointSet, WeightedSet};

/// A monotone classifier represented by the minimal points ("anchors") of
/// its positive region.
///
/// Invariants maintained by construction:
/// * all anchors share the classifier's dimensionality;
/// * no anchor dominates another (redundant anchors are pruned).
#[derive(Debug, Clone, PartialEq)]
pub struct MonotoneClassifier {
    dim: usize,
    /// Minimal positive anchors, flat row-major storage.
    anchors: Vec<Vec<f64>>,
}

impl MonotoneClassifier {
    /// The all-zero classifier (`h ≡ 0`).
    pub fn all_zero(dim: usize) -> Self {
        assert!(dim > 0, "dimensionality must be at least 1");
        Self {
            dim,
            anchors: Vec::new(),
        }
    }

    /// The all-one classifier (`h ≡ 1`), anchored at `(-∞, …, -∞)`.
    pub fn all_one(dim: usize) -> Self {
        assert!(dim > 0, "dimensionality must be at least 1");
        Self {
            dim,
            anchors: vec![vec![f64::NEG_INFINITY; dim]],
        }
    }

    /// Builds a classifier from arbitrary anchors; dominated-redundant
    /// anchors are pruned to restore minimality, **canonically**: the
    /// kept anchors are independent of the input order, stored in
    /// lexicographic order with `-0.0` normalized to `0.0`, and exact
    /// duplicates collapsed. Two anchor sets describing the same up-set
    /// of minimal points therefore produce `==` classifiers (and
    /// byte-identical CSV snapshots).
    ///
    /// Anchors containing `NaN` are dropped: no point dominates a `NaN`
    /// coordinate under IEEE `>=`, so such an anchor can never classify
    /// anything as 1 and removing it is behavior-identical.
    ///
    /// The sweep sorts first (`O(a log a)` comparisons), then scans in
    /// lexicographic order where an anchor can only be made redundant by
    /// an already-kept one — so pruning is `O(a·m·d)` for `m` kept
    /// anchors instead of the former all-pairs `O(a²·d)` with
    /// input-order-dependent survivors among duplicates.
    ///
    /// # Panics
    ///
    /// Panics if any anchor has the wrong dimensionality.
    pub fn from_anchors(dim: usize, anchors: Vec<Vec<f64>>) -> Self {
        assert!(dim > 0, "dimensionality must be at least 1");
        for a in &anchors {
            assert_eq!(a.len(), dim, "anchor dimensionality mismatch");
        }
        let mut canonical: Vec<Vec<f64>> = anchors
            .into_iter()
            .filter(|a| a.iter().all(|c| !c.is_nan()))
            .map(|mut a| {
                for c in &mut a {
                    // -0.0 == 0.0 under the IEEE `>=` of `dominates`;
                    // store the positive representative so total_cmp
                    // sorting and PartialEq agree with classification.
                    if *c == 0.0 {
                        *c = 0.0;
                    }
                }
                a
            })
            .collect();
        canonical.sort_unstable_by(|a, b| {
            a.iter()
                .zip(b.iter())
                .map(|(x, y)| x.total_cmp(y))
                .find(|o| o.is_ne())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        canonical.dedup();
        // If `b ⪯ a` (so `a` is redundant) then `b` sorts before `a`
        // lexicographically; scanning in sorted order means every anchor
        // that could prune `a` is already in `minimal`, and nothing kept
        // is ever invalidated later.
        let mut minimal: Vec<Vec<f64>> = Vec::new();
        for a in canonical {
            if !minimal.iter().any(|m| dominates(&a, m)) {
                minimal.push(a);
            }
        }
        Self {
            dim,
            anchors: minimal,
        }
    }

    /// The paper's 1D threshold classifier `h^τ`: `h(p) = 1` iff `p > τ`
    /// (equation (6)).
    ///
    /// The anchor is placed at the smallest `f64` strictly above `τ`, so
    /// classification is exact for every representable input value.
    pub fn threshold_1d(tau: f64) -> Self {
        let anchor = if tau == f64::NEG_INFINITY {
            f64::NEG_INFINITY // h^{-∞} ≡ 1 on all reals
        } else {
            next_up(tau)
        };
        Self {
            dim: 1,
            anchors: vec![vec![anchor]],
        }
    }

    /// Builds the classifier whose positive region is the up-closure of
    /// the points of `points` selected by `positive`.
    ///
    /// This is the canonical way to turn a per-point 0/1 assignment into a
    /// full classifier: anchors are the minimal selected points. If the
    /// assignment itself was monotone on `points` (no 0-point dominating a
    /// 1-point), the classifier agrees with the assignment on every point
    /// of `points`; otherwise the up-closure overrides some 0s to 1.
    pub fn from_positive_points(points: &PointSet, positive: &[bool]) -> Self {
        assert_eq!(points.len(), positive.len(), "assignment length mismatch");
        let anchors = (0..points.len())
            .filter(|&i| positive[i])
            .map(|i| points.point(i).to_vec())
            .collect();
        Self::from_anchors(points.dim(), anchors)
    }

    /// Dimensionality `d`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The minimal anchors of the positive region.
    pub fn anchors(&self) -> &[Vec<f64>] {
        &self.anchors
    }

    /// Classifies a point: 1 iff it dominates some anchor.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) on dimensionality mismatch.
    pub fn classify(&self, p: &[f64]) -> Label {
        debug_assert_eq!(p.len(), self.dim, "point dimensionality mismatch");
        Label::from_bool(self.anchors.iter().any(|a| dominates(p, a)))
    }

    /// `err_P(h)` — equation (1): the number of points of `data`
    /// misclassified by this classifier.
    pub fn error_on(&self, data: &LabeledSet) -> u64 {
        data.error_of(|p| self.classify(p))
    }

    /// `w-err_P(h)` — equation (3): the weighted error on `data`.
    pub fn weighted_error_on(&self, data: &WeightedSet) -> f64 {
        data.weighted_error_of(|p| self.classify(p))
    }

    /// Evaluates the classifier on every point of a set.
    pub fn classify_set(&self, points: &PointSet) -> Vec<Label> {
        points.iter().map(|p| self.classify(p)).collect()
    }
}

/// Checks that a per-point assignment is monotone *on the given points*:
/// returns the first violating pair `(i, j)` with `points[i] ⪰ points[j]`
/// but `assignment[i] < assignment[j]`, if any.
#[allow(clippy::needless_range_loop)]
pub fn find_monotonicity_violation(
    points: &PointSet,
    assignment: &[Label],
) -> Option<(usize, usize)> {
    assert_eq!(points.len(), assignment.len(), "assignment length mismatch");
    for i in 0..points.len() {
        if assignment[i].is_one() {
            continue;
        }
        for j in 0..points.len() {
            if assignment[j].is_one() && i != j && points.dominates(i, j) {
                return Some((i, j));
            }
        }
    }
    None
}

/// Smallest `f64` strictly greater than `x` (stable replacement for the
/// unstable-at-MSRV `f64::next_up`).
fn next_up(x: f64) -> f64 {
    assert!(!x.is_nan(), "threshold must not be NaN");
    if x == f64::INFINITY {
        return x;
    }
    if x == 0.0 {
        return f64::from_bits(1); // smallest positive subnormal
    }
    let bits = x.to_bits();
    if x > 0.0 {
        f64::from_bits(bits + 1)
    } else {
        f64::from_bits(bits - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_zero_and_all_one() {
        let z = MonotoneClassifier::all_zero(2);
        let o = MonotoneClassifier::all_one(2);
        for p in [[0.0, 0.0], [-1e300, 5.0], [7.0, -2.0]] {
            assert_eq!(z.classify(&p), Label::Zero);
            assert_eq!(o.classify(&p), Label::One);
        }
    }

    #[test]
    fn threshold_semantics_strict() {
        // h^τ: 1 iff p > τ.
        let h = MonotoneClassifier::threshold_1d(2.0);
        assert_eq!(h.classify(&[2.0]), Label::Zero);
        assert_eq!(h.classify(&[2.0 + 1e-9]), Label::One);
        assert_eq!(h.classify(&[1.0]), Label::Zero);
        assert_eq!(h.classify(&[3.0]), Label::One);
    }

    #[test]
    fn threshold_neg_infinity_is_all_one() {
        let h = MonotoneClassifier::threshold_1d(f64::NEG_INFINITY);
        assert_eq!(h.classify(&[-1e308]), Label::One);
    }

    #[test]
    fn anchor_pruning_keeps_minimal() {
        let h = MonotoneClassifier::from_anchors(
            2,
            vec![vec![2.0, 2.0], vec![1.0, 1.0], vec![3.0, 0.0]],
        );
        // (2,2) dominates (1,1) so it is redundant.
        assert_eq!(h.anchors().len(), 2);
        assert!(h.anchors().contains(&vec![1.0, 1.0]));
        assert!(h.anchors().contains(&vec![3.0, 0.0]));
        assert_eq!(h.classify(&[2.0, 2.0]), Label::One);
        assert_eq!(h.classify(&[0.5, 0.5]), Label::Zero);
        assert_eq!(h.classify(&[3.0, 0.0]), Label::One);
    }

    #[test]
    fn classifier_is_monotone_by_construction() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        let anchors: Vec<Vec<f64>> = (0..6)
            .map(|_| (0..3).map(|_| rng.gen_range(-5.0..5.0)).collect())
            .collect();
        let h = MonotoneClassifier::from_anchors(3, anchors);
        for _ in 0..200 {
            let p: Vec<f64> = (0..3).map(|_| rng.gen_range(-6.0..6.0)).collect();
            let q: Vec<f64> = (0..3)
                .enumerate()
                .map(|(i, _)| p[i] - rng.gen_range(0.0..2.0))
                .collect();
            // p dominates q by construction.
            assert!(h.classify(&p) >= h.classify(&q));
        }
    }

    #[test]
    fn from_positive_points_agrees_with_monotone_assignment() {
        let points = PointSet::from_rows(2, &[vec![0.0, 0.0], vec![1.0, 1.0], vec![2.0, 2.0]]);
        let positive = [false, true, true];
        let h = MonotoneClassifier::from_positive_points(&points, &positive);
        assert_eq!(h.classify(points.point(0)), Label::Zero);
        assert_eq!(h.classify(points.point(1)), Label::One);
        assert_eq!(h.classify(points.point(2)), Label::One);
        assert_eq!(h.anchors().len(), 1);
    }

    #[test]
    fn from_positive_points_up_closes_invalid_assignment() {
        let points = PointSet::from_rows(2, &[vec![0.0, 0.0], vec![1.0, 1.0]]);
        // Assign the dominated point 1 and the dominating point 0:
        // up-closure forces both to 1.
        let h = MonotoneClassifier::from_positive_points(&points, &[true, false]);
        assert_eq!(h.classify(points.point(0)), Label::One);
        assert_eq!(h.classify(points.point(1)), Label::One);
    }

    #[test]
    fn violation_detection() {
        // Point 1 = (1,1) dominates point 0 = (0,0).
        let points = PointSet::from_rows(2, &[vec![0.0, 0.0], vec![1.0, 1.0]]);
        // Dominated 0, dominating 1: monotone.
        assert_eq!(
            find_monotonicity_violation(&points, &[Label::Zero, Label::One]),
            None
        );
        // Dominated 1 while dominating 0: violation (dominating index first).
        assert_eq!(
            find_monotonicity_violation(&points, &[Label::One, Label::Zero]),
            Some((1, 0))
        );
        // Incomparable points: any assignment is monotone.
        let points = PointSet::from_rows(2, &[vec![0.0, 1.0], vec![1.0, 0.0]]);
        assert_eq!(
            find_monotonicity_violation(&points, &[Label::One, Label::Zero]),
            None
        );
    }

    #[test]
    fn errors_on_labeled_and_weighted() {
        let points = PointSet::from_rows(1, &[vec![1.0], vec![2.0], vec![3.0]]);
        let labels = vec![Label::Zero, Label::One, Label::Zero];
        let h = MonotoneClassifier::threshold_1d(1.5);
        let ls = LabeledSet::new(points.clone(), labels.clone());
        assert_eq!(h.error_on(&ls), 1); // point 3.0 predicted 1 but labeled 0
        let ws = WeightedSet::new(points, labels, vec![1.0, 1.0, 10.0]);
        assert_eq!(h.weighted_error_on(&ws), 10.0);
    }

    #[test]
    fn next_up_properties() {
        assert!(next_up(0.0) > 0.0);
        assert!(next_up(1.0) > 1.0);
        assert!(next_up(-1.0) > -1.0);
        assert_eq!(next_up(f64::INFINITY), f64::INFINITY);
        let x = 123.456;
        assert_eq!(next_up(x), f64::from_bits(x.to_bits() + 1));
    }
}
