//! Integration tests of the `mc-obs` instrumentation across the solve
//! pipeline: span nesting over the active→passive boundary, and
//! reconciliation of the exported `oracle.*` counters with the
//! [`mc_core::SolveReport`] of the same run.

use mc_core::passive::solve_passive;
use mc_core::{ActiveParams, ActiveSolver, InMemoryOracle};
use mc_geom::{Label, LabeledSet};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// These tests mutate the process-global `mc-obs` level and registry,
/// so they serialize on one lock (the harness runs tests in parallel).
fn obs_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn demo_set(n: usize) -> LabeledSet {
    let mut data = LabeledSet::empty(2);
    for i in 0..n {
        let x = (i % 17) as f64;
        let y = (i / 17) as f64;
        data.push(&[x, y], Label::from_bool(x + y >= 12.0));
    }
    data
}

#[test]
fn spans_nest_across_active_passive_boundary() {
    let _l = obs_lock();
    let prev = mc_obs::level();
    mc_obs::set_level(mc_obs::Level::Info);
    mc_obs::reset();

    let data = demo_set(300);
    let mut oracle = InMemoryOracle::from_labeled(&data);
    let sol =
        ActiveSolver::new(ActiveParams::new(0.5).with_seed(9)).solve(data.points(), &mut oracle);

    let s = mc_obs::snapshot();
    // The passive solve on Σ runs nested inside the active solve, as do
    // the decomposition and sampling phases.
    let passive = s.span("active/passive").expect("active/passive span");
    assert!(passive.calls >= 1);
    let active = s.span("active").expect("active span");
    assert!(active.total_ns >= passive.total_ns);
    for phase in ["active/chain_decomposition", "active/sampling"] {
        assert!(s.span(phase).is_some(), "missing span {phase}");
    }
    // The exported counters reconcile exactly with the SolveReport of
    // this (single, post-reset) solve.
    assert_eq!(s.counter("oracle.attempts"), sol.report.attempts as u64);
    assert_eq!(s.counter("oracle.retries"), sol.report.retries as u64);
    assert_eq!(
        s.counter("oracle.abstentions"),
        sol.report.abstentions as u64
    );
    assert_eq!(
        s.counter("passive.points"),
        s.counter("sampling.sigma_points")
    );

    mc_obs::set_level(prev);
}

#[test]
fn passive_standalone_is_a_root_span() {
    let _l = obs_lock();
    let prev = mc_obs::level();
    mc_obs::set_level(mc_obs::Level::Info);
    mc_obs::reset();

    let data = demo_set(120).with_unit_weights();
    let _sol = solve_passive(&data);

    let s = mc_obs::snapshot();
    let p = s.span("passive").expect("root passive span");
    assert_eq!(p.depth, 0);
    assert!(s.span("passive/contending").is_some());
    assert_eq!(s.counter("passive.points"), 120);

    mc_obs::set_level(prev);
}

#[test]
fn disabled_runs_leave_no_metrics() {
    let _l = obs_lock();
    let prev = mc_obs::level();
    mc_obs::set_level(mc_obs::Level::Warn);
    mc_obs::reset();

    let data = demo_set(80).with_unit_weights();
    let _sol = solve_passive(&data);

    let s = mc_obs::snapshot();
    assert!(s.span("passive").is_none());
    assert_eq!(s.counter("passive.points"), 0);

    mc_obs::set_level(prev);
}
