//! Property tests: the three passive network strategies (paper-literal
//! dense, `d ≤ 2` sweep gadget, dimension-generic chain ladder) are
//! interchangeable — identical optimal weighted error, and every
//! strategy's assignment is a valid monotone labeling achieving it.

use mc_core::find_monotonicity_violation;
use mc_core::passive::{NetworkStrategy, PassiveSolver};
use mc_geom::{Label, WeightedSet};
use proptest::prelude::*;

/// Rows of (coords ≤ 4-dim, label, weight); each case truncates the
/// coordinates to the dimension under test.
fn rows_strategy(max_len: usize) -> impl Strategy<Value = Vec<(u8, u8, u8, u8, bool, u8)>> {
    prop::collection::vec(
        (0u8..6, 0u8..6, 0u8..6, 0u8..6, prop::bool::ANY, 1u8..10),
        0..max_len,
    )
}

fn build(rows: &[(u8, u8, u8, u8, bool, u8)], dim: usize) -> WeightedSet {
    let mut ws = WeightedSet::empty(dim);
    for &(c0, c1, c2, c3, label, weight) in rows {
        let coords = [c0 as f64, c1 as f64, c2 as f64, c3 as f64];
        ws.push(&coords[..dim], Label::from_bool(label), weight as f64);
    }
    ws
}

/// Checks that `solver` reproduces the reference error on `ws` and that
/// its assignment is monotone and actually achieves the error it claims.
fn check_strategy(ws: &WeightedSet, strategy: NetworkStrategy, reference: f64) {
    let sol = PassiveSolver::new().with_network(strategy).solve(ws);
    assert!(
        (sol.weighted_error - reference).abs() < 1e-9,
        "{strategy:?}: weighted error {} != reference {reference}\n{ws:?}",
        sol.weighted_error
    );
    assert_eq!(
        find_monotonicity_violation(ws.points(), &sol.assignment),
        None,
        "{strategy:?}: assignment not monotone\n{ws:?}"
    );
    // The assignment's disagreement weight is the claimed error.
    let achieved: f64 = (0..ws.len())
        .filter(|&i| sol.assignment[i] != ws.label(i))
        .map(|i| ws.weight(i))
        .sum();
    assert!(
        (achieved - sol.weighted_error).abs() < 1e-9,
        "{strategy:?}: assignment cost {achieved} != reported {}",
        sol.weighted_error
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Dense vs chain ladder vs the dimension-dispatched default agree
    /// at every dimension 1..=4 (d ≤ 2 under Auto exercises the sweep
    /// gadget, so this also cross-checks it against the generic ladder).
    #[test]
    fn strategies_agree(rows in rows_strategy(60), dim in 1usize..5) {
        let ws = build(&rows, dim);
        let dense = PassiveSolver::new()
            .with_network(NetworkStrategy::Dense)
            .solve(&ws);
        check_strategy(&ws, NetworkStrategy::Sparse, dense.weighted_error);
        check_strategy(&ws, NetworkStrategy::Auto, dense.weighted_error);
        // Dense itself must satisfy its own invariants too.
        check_strategy(&ws, NetworkStrategy::Dense, dense.weighted_error);
    }

    /// Heavy duplicate pressure: coordinates from a 2-value grid force
    /// many equal points and cross-label duplicates.
    #[test]
    fn strategies_agree_under_duplicates(rows in prop::collection::vec(
        (0u8..2, 0u8..2, 0u8..2, 0u8..2, prop::bool::ANY, 1u8..10), 0..40), dim in 1usize..5) {
        let ws = build(&rows, dim);
        let dense = PassiveSolver::new()
            .with_network(NetworkStrategy::Dense)
            .solve(&ws);
        check_strategy(&ws, NetworkStrategy::Sparse, dense.weighted_error);
    }
}

#[test]
fn signed_zeros_are_one_coordinate() {
    // -0.0 and +0.0 must compare equal in every strategy (the index
    // canonicalizes them; total_cmp alone would not).
    for dim in [1usize, 2, 3] {
        let mut ws = WeightedSet::empty(dim);
        ws.push(&vec![0.0; dim], Label::One, 5.0);
        ws.push(&vec![-0.0; dim], Label::Zero, 2.0);
        let dense = PassiveSolver::new()
            .with_network(NetworkStrategy::Dense)
            .solve(&ws);
        assert_eq!(
            dense.weighted_error, 2.0,
            "dim {dim}: duplicates must contend"
        );
        check_strategy(&ws, NetworkStrategy::Sparse, dense.weighted_error);
        check_strategy(&ws, NetworkStrategy::Auto, dense.weighted_error);
    }
}

#[test]
fn uniform_labels_cost_nothing() {
    for label in [Label::Zero, Label::One] {
        for dim in [1usize, 3] {
            let mut ws = WeightedSet::empty(dim);
            for i in 0..20 {
                ws.push(&vec![(i % 5) as f64; dim], label, 1.0 + i as f64);
            }
            for strategy in [
                NetworkStrategy::Auto,
                NetworkStrategy::Dense,
                NetworkStrategy::Sparse,
            ] {
                let sol = PassiveSolver::new().with_network(strategy).solve(&ws);
                assert_eq!(sol.weighted_error, 0.0, "{label:?}/{strategy:?}/d={dim}");
                assert_eq!(sol.contending, 0);
            }
        }
    }
}

#[test]
fn strategy_parsing_round_trips() {
    assert_eq!(NetworkStrategy::parse("auto"), Some(NetworkStrategy::Auto));
    assert_eq!(
        NetworkStrategy::parse("DENSE"),
        Some(NetworkStrategy::Dense)
    );
    assert_eq!(
        NetworkStrategy::parse("sparse"),
        Some(NetworkStrategy::Sparse)
    );
    assert_eq!(NetworkStrategy::parse(""), Some(NetworkStrategy::Auto));
    assert_eq!(NetworkStrategy::parse("ladder"), None);
}
