//! End-to-end equivalence of the banded shard matching engine through
//! the passive pipeline: routing the Lemma-6 chain decomposition
//! through `MatchingEngine::Shard` (any shard count) must leave the
//! optimal weighted error, the contending counts, and the dominance
//! width bit-identical to the sequential engines — on both the
//! in-memory ladder path and the streaming scale path, including the
//! uniform-label edge cases where one side of the flow is empty.

use mc_chains::{with_matching_override, MatchingEngine};
use mc_core::passive::{
    solve_passive, solve_passive_scale, solve_passive_scale_cancellable, NetworkStrategy,
    PassiveSolver,
};
use mc_geom::{Label, RankTable, WeightedSet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_weighted(n: usize, dim: usize, grid: f64, rng: &mut StdRng) -> WeightedSet {
    let mut ws = WeightedSet::empty(dim);
    let mut coords = vec![0.0f64; dim];
    for _ in 0..n {
        for c in coords.iter_mut() {
            *c = rng.gen_range(0.0..grid).round();
        }
        ws.push(
            &coords,
            Label::from_bool(rng.gen_bool(0.5)),
            rng.gen_range(1..10) as f64,
        );
    }
    ws
}

#[test]
fn sharded_ladder_solve_is_bit_identical() {
    let mut rng = StdRng::seed_from_u64(0x5AAD);
    for dim in [3usize, 4] {
        for &shards in &[2usize, 4, 16] {
            let n = rng.gen_range(20..140);
            let ws = random_weighted(n, dim, 5.0, &mut rng);
            let seq = PassiveSolver::new()
                .with_network(NetworkStrategy::Sparse)
                .solve(&ws);
            let sh = with_matching_override(MatchingEngine::Shard, Some(shards), || {
                PassiveSolver::new()
                    .with_network(NetworkStrategy::Sparse)
                    .solve(&ws)
            });
            assert_eq!(
                sh.weighted_error.to_bits(),
                seq.weighted_error.to_bits(),
                "dim {dim} shards {shards}: error differs"
            );
            assert_eq!(sh.contending, seq.contending);
            assert_eq!(
                mc_core::find_monotonicity_violation(ws.points(), &sh.assignment),
                None
            );
        }
    }
}

#[test]
fn sharded_scale_solve_is_bit_identical() {
    let mut rng = StdRng::seed_from_u64(0x5CAD);
    for dim in [2usize, 3, 4] {
        let n = rng.gen_range(30..160);
        let ws = random_weighted(n, dim, 4.0, &mut rng);
        let table = RankTable::build(ws.points());
        let seq = solve_passive_scale(&table, ws.labels(), ws.weights());
        let sh = with_matching_override(MatchingEngine::Shard, Some(4), || {
            solve_passive_scale_cancellable(
                &table,
                ws.labels(),
                ws.weights(),
                &mc_obs::CancelToken::never(),
            )
        })
        .unwrap();
        assert_eq!(
            sh.weighted_error.to_bits(),
            seq.weighted_error.to_bits(),
            "dim {dim}: scale error differs"
        );
        assert_eq!(sh.width, seq.width, "dim {dim}: width differs");
        assert_eq!(sh.contending_zeros, seq.contending_zeros);
        assert_eq!(sh.contending_ones, seq.contending_ones);
    }
}

#[test]
fn sharded_solve_handles_uniform_labels() {
    // All-ones and all-zeros inputs: the Lemma-6 instance is either the
    // whole set or empty; the shard dispatch must survive both.
    for label in [Label::One, Label::Zero] {
        let mut ws = WeightedSet::empty(3);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..60 {
            let coords = [
                rng.gen_range(0.0..4.0f64).round(),
                rng.gen_range(0.0..4.0f64).round(),
                rng.gen_range(0.0..4.0f64).round(),
            ];
            ws.push(&coords, label, 1.0);
        }
        let seq = solve_passive(&ws);
        let sh = with_matching_override(MatchingEngine::Shard, Some(4), || solve_passive(&ws));
        assert_eq!(sh.weighted_error.to_bits(), seq.weighted_error.to_bits());
        assert_eq!(seq.weighted_error, 0.0, "uniform labels are monotone");
    }
}
