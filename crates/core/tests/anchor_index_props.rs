//! Property tests for the anchor-index query fast path and the
//! canonical anchor pruning behind it.
//!
//! Two families of invariants:
//!
//! * **Bit-identical queries**: [`AnchorIndex`] must answer every point
//!   exactly like the naive anchor scan it replaces — across duplicate
//!   anchors, per-dimension ties, signed zeros, infinities, `NaN`
//!   queries, and the empty anchor set.
//! * **Canonical pruning**: [`MonotoneClassifier::from_anchors`] must
//!   classify identically to the raw, unpruned anchor list (including
//!   `NaN`-poisoned anchors, which can never fire), keep an antichain,
//!   and produce the *same* classifier regardless of input order or
//!   duplication.

use mc_core::{AnchorIndex, MonotoneClassifier, QueryScratch};
use mc_geom::{dominates, Label};
use proptest::prelude::*;

/// Coordinate palette forcing duplicates, ties, signed zeros, and
/// infinite sentinels (same spirit as the geom index props).
const PALETTE: [f64; 8] = [
    f64::NEG_INFINITY,
    -0.0,
    0.0,
    -1.5,
    1.0,
    2.0,
    3.25,
    f64::INFINITY,
];

/// Query palette: everything an anchor can hold, plus `NaN` (queries
/// may be `NaN`; canonical anchors never are).
const QUERY_PALETTE: [f64; 9] = [
    f64::NEG_INFINITY,
    -0.0,
    0.0,
    -1.5,
    1.0,
    2.0,
    3.25,
    f64::INFINITY,
    f64::NAN,
];

fn anchor_lists(max_n: usize, dim: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(0usize..PALETTE.len(), dim), 0..max_n).prop_map(
        |rows| {
            rows.into_iter()
                .map(|row| row.into_iter().map(|i| PALETTE[i]).collect())
                .collect()
        },
    )
}

/// Anchor lists that may also contain `NaN` coordinates (index 8 of the
/// query palette), exercising the `from_anchors` drop path.
fn raw_anchor_lists(max_n: usize, dim: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(
        prop::collection::vec(0usize..QUERY_PALETTE.len(), dim),
        0..max_n,
    )
    .prop_map(|rows| {
        rows.into_iter()
            .map(|row| row.into_iter().map(|i| QUERY_PALETTE[i]).collect())
            .collect()
    })
}

fn query_points(max_n: usize, dim: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(
        prop::collection::vec(0usize..QUERY_PALETTE.len(), dim),
        0..max_n,
    )
    .prop_map(|rows| {
        rows.into_iter()
            .map(|row| row.into_iter().map(|i| QUERY_PALETTE[i]).collect())
            .collect()
    })
}

/// The ground truth every fast path must reproduce: a raw scan over the
/// *unpruned* anchor list.
fn naive_scan(raw_anchors: &[Vec<f64>], p: &[f64]) -> Label {
    Label::from_bool(raw_anchors.iter().any(|a| dominates(p, a)))
}

fn check_index_matches_naive(raw_anchors: Vec<Vec<f64>>, queries: &[Vec<f64>], dim: usize) {
    let h = MonotoneClassifier::from_anchors(dim, raw_anchors.clone());
    let idx = AnchorIndex::build(&h);
    let mut scratch = QueryScratch::default();
    for p in queries {
        let expected = naive_scan(&raw_anchors, p);
        assert_eq!(
            h.classify(p),
            expected,
            "pruned classifier diverges on {p:?}"
        );
        assert_eq!(
            idx.classify_with(p, &mut scratch),
            expected,
            "index diverges on {p:?} with anchors {:?}",
            h.anchors()
        );
    }
    // The flat batch kernel must agree point-for-point with the
    // single-point path (and therefore with the naive scan).
    let flat: Vec<f64> = queries.iter().flatten().copied().collect();
    let batch = idx.classify_batch(&flat);
    let singles: Vec<Label> = queries
        .iter()
        .map(|p| naive_scan(&raw_anchors, p))
        .collect();
    assert_eq!(batch, singles);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Index ≡ naive scan, across the dimensionalities the serving path
    /// dispatches on, including NaN queries and NaN-poisoned anchors.
    #[test]
    fn index_matches_naive_scan_d1(
        anchors in raw_anchor_lists(24, 1),
        queries in query_points(32, 1),
    ) {
        check_index_matches_naive(anchors, &queries, 1);
    }

    #[test]
    fn index_matches_naive_scan_d2(
        anchors in raw_anchor_lists(24, 2),
        queries in query_points(32, 2),
    ) {
        check_index_matches_naive(anchors, &queries, 2);
    }

    #[test]
    fn index_matches_naive_scan_d3(
        anchors in raw_anchor_lists(20, 3),
        queries in query_points(24, 3),
    ) {
        check_index_matches_naive(anchors, &queries, 3);
    }

    #[test]
    fn index_matches_naive_scan_d5(
        anchors in raw_anchor_lists(16, 5),
        queries in query_points(20, 5),
    ) {
        check_index_matches_naive(anchors, &queries, 5);
    }

    /// Pruning keeps a strict antichain of canonical representatives:
    /// no kept anchor dominates another, no `NaN` survives, `-0.0` is
    /// stored as `+0.0`, and the list is duplicate-free.
    #[test]
    fn pruned_anchors_form_canonical_antichain(anchors in raw_anchor_lists(24, 3)) {
        let h = MonotoneClassifier::from_anchors(3, anchors);
        let kept = h.anchors();
        for (i, a) in kept.iter().enumerate() {
            prop_assert!(a.iter().all(|c| !c.is_nan()));
            prop_assert!(a.iter().all(|c| !(*c == 0.0 && c.is_sign_negative())));
            for (j, b) in kept.iter().enumerate() {
                if i != j {
                    prop_assert!(
                        !dominates(a, b),
                        "kept anchor {a:?} dominates kept anchor {b:?}"
                    );
                }
            }
        }
    }

    /// Canonicality: reordering, reversing, and duplicating the input
    /// anchors must produce the *same* classifier (`==`, not merely
    /// equivalent), so snapshots are byte-stable across training runs.
    #[test]
    fn pruning_is_input_order_independent(
        anchors in anchor_lists(20, 2),
        mask in prop::collection::vec(prop::bool::ANY, 20),
    ) {
        let h = MonotoneClassifier::from_anchors(2, anchors.clone());

        let mut reversed_doubled: Vec<Vec<f64>> = anchors.iter().rev().cloned().collect();
        reversed_doubled.extend(anchors.iter().cloned());
        prop_assert_eq!(
            &MonotoneClassifier::from_anchors(2, reversed_doubled),
            &h
        );

        // Mask-driven partition: kept-first/dropped-last is a different
        // permutation for almost every mask.
        let mut partitioned: Vec<Vec<f64>> = Vec::new();
        for (i, a) in anchors.iter().enumerate() {
            if mask.get(i).copied().unwrap_or(false) {
                partitioned.push(a.clone());
            }
        }
        for (i, a) in anchors.iter().enumerate() {
            if !mask.get(i).copied().unwrap_or(false) {
                partitioned.push(a.clone());
            }
        }
        prop_assert_eq!(&MonotoneClassifier::from_anchors(2, partitioned), &h);
    }

    /// Signed-zero anchors and queries: `-0.0` and `0.0` must be fully
    /// interchangeable on both sides of the comparison.
    #[test]
    fn signed_zeros_are_interchangeable(queries in query_points(24, 2)) {
        let pos = MonotoneClassifier::from_anchors(2, vec![vec![0.0, 1.0]]);
        let neg = MonotoneClassifier::from_anchors(2, vec![vec![-0.0, 1.0]]);
        prop_assert_eq!(pos.anchors(), neg.anchors());
        let idx = AnchorIndex::build(&pos);
        let mut scratch = QueryScratch::default();
        for p in &queries {
            let flipped: Vec<f64> = p.iter().map(|&c| if c == 0.0 { -c } else { c }).collect();
            prop_assert_eq!(
                idx.classify_with(p, &mut scratch),
                idx.classify_with(&flipped, &mut scratch)
            );
        }
    }
}

/// Deterministic edges the palette cannot force reliably.
mod edges {
    use super::*;

    #[test]
    fn empty_anchor_set_classifies_everything_zero() {
        let h = MonotoneClassifier::all_zero(4);
        let idx = AnchorIndex::build(&h);
        assert_eq!(idx.classify(&[f64::INFINITY; 4]), Label::Zero);
        assert!(idx.classify_batch(&[]).is_empty());
    }

    #[test]
    fn nan_only_anchor_list_is_all_zero() {
        let h = MonotoneClassifier::from_anchors(2, vec![vec![f64::NAN, 0.0]]);
        assert!(h.anchors().is_empty());
        let idx = AnchorIndex::build(&h);
        assert_eq!(idx.classify(&[f64::INFINITY, f64::INFINITY]), Label::Zero);
    }

    #[test]
    fn duplicate_anchors_collapse_to_one() {
        let h = MonotoneClassifier::from_anchors(
            2,
            vec![vec![1.0, 2.0], vec![1.0, 2.0], vec![1.0, 2.0]],
        );
        assert_eq!(h.anchors().len(), 1);
    }

    #[test]
    fn many_anchors_cross_block_boundary() {
        // > 256 anchors so the u64×4 kernel runs its blocked body.
        let anchors: Vec<Vec<f64>> = (0..520).map(|i| vec![i as f64, (520 - i) as f64]).collect();
        let raw = anchors.clone();
        let h = MonotoneClassifier::from_anchors(2, anchors);
        assert_eq!(h.anchors().len(), 520);
        let idx = AnchorIndex::build(&h);
        let mut scratch = QueryScratch::default();
        for i in 0..200 {
            let p = vec![(i * 5) as f64 - 2.0, (i * 3) as f64 + 0.5];
            assert_eq!(idx.classify_with(&p, &mut scratch), naive_scan(&raw, &p));
        }
    }
}
