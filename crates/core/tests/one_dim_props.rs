//! Property tests for the Section-3 1D recursive sampler.

use mc_core::active::{sigma_errors_by_boundary, weighted_sample_1d, OneDimParams};
use mc_core::{InMemoryOracle, LabelOracle};
use mc_geom::Label;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn labels_strategy(max_len: usize) -> impl Strategy<Value = Vec<Label>> {
    prop::collection::vec(prop::bool::ANY, 0..max_len)
        .prop_map(|bits| bits.into_iter().map(Label::from_bool).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Structural invariants of Σ: positions in range, weights positive,
    /// labels faithful to the oracle's ground truth.
    #[test]
    fn sigma_is_well_formed(labels in labels_strategy(600), seed in 0u64..1000) {
        let m = labels.len();
        let mut oracle = InMemoryOracle::new(labels.clone());
        let mut rng = StdRng::seed_from_u64(seed);
        let params = OneDimParams::new(0.5, 0.1);
        let res = weighted_sample_1d(&mut oracle, &params, &mut rng);
        for entry in &res.sigma {
            prop_assert!(entry.position < m);
            prop_assert!(entry.weight > 0.0 && entry.weight.is_finite());
            prop_assert_eq!(entry.label, labels[entry.position]);
        }
        prop_assert!(oracle.probes_used() <= m);
        // Levels bounded by the depth cap.
        if m > 0 {
            let cap = ((m as f64).ln() / (8.0_f64 / 5.0).ln()).ceil() as usize + 3;
            prop_assert!(res.levels <= cap, "levels {} > cap {cap}", res.levels);
        }
    }

    /// At sizes below the Lemma-5 sample threshold the sampler probes
    /// everything, so Σ reproduces the exact error profile.
    #[test]
    fn small_inputs_give_exact_sigma(labels in labels_strategy(200)) {
        let m = labels.len();
        let mut oracle = InMemoryOracle::new(labels.clone());
        let mut rng = StdRng::seed_from_u64(7);
        let params = OneDimParams::new(0.5, 0.1);
        let res = weighted_sample_1d(&mut oracle, &params, &mut rng);
        prop_assert_eq!(oracle.probes_used(), m, "sub-threshold inputs are probed fully");
        let sigma_errs = sigma_errors_by_boundary(&res.sigma, m);
        // Exact errors by direct computation.
        let total_zeros = labels.iter().filter(|l| l.is_zero()).count() as f64;
        let mut ones_below = 0.0;
        let mut zeros_below = 0.0;
        for b in 0..=m {
            if b > 0 {
                match labels[b - 1] {
                    Label::One => ones_below += 1.0,
                    Label::Zero => zeros_below += 1.0,
                }
            }
            let exact = ones_below + total_zeros - zeros_below;
            prop_assert!((sigma_errs[b] - exact).abs() < 1e-9, "boundary {b}");
        }
    }

    /// Determinism: same seed, same Σ and probe count.
    #[test]
    fn sampler_is_deterministic(labels in labels_strategy(300), seed in 0u64..50) {
        let run = || {
            let mut oracle = InMemoryOracle::new(labels.clone());
            let mut rng = StdRng::seed_from_u64(seed);
            let res = weighted_sample_1d(&mut oracle, &OneDimParams::new(1.0, 0.1), &mut rng);
            (res.sigma, oracle.probes_used())
        };
        let (s1, p1) = run();
        let (s2, p2) = run();
        prop_assert_eq!(p1, p2);
        prop_assert_eq!(s1, s2);
    }
}
