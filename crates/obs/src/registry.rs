//! The thread-safe global metrics registry.
//!
//! One process-wide registry holds every counter, gauge, histogram, the
//! aggregated span forest, and the raw event buffer. Counters and
//! histograms are leaked `'static` atomics: a handle fetched once stays
//! valid forever (even across [`reset`](crate::reset), which zeroes
//! values in place rather than dropping them), so hot loops can cache a
//! handle and pay only relaxed atomic ops per update. Everything else is
//! guarded by one mutex — instrumentation points sit at phase/chain/round
//! granularity, never inside per-point inner loops, so contention is
//! negligible.

use crate::hist::Histogram;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;

/// Cap on buffered raw events; beyond it events are counted as dropped
/// instead of stored, bounding memory on long runs.
pub const MAX_EVENTS: usize = 4096;

/// One aggregation node of the span forest.
#[derive(Debug)]
pub(crate) struct SpanNode {
    pub name: &'static str,
    pub parent: usize,
    pub children: Vec<usize>,
    pub calls: u64,
    pub total_ns: u64,
}

/// Live progress of one instrumented phase: work units completed and the
/// (best-known) total. Leaked `'static` like counters, so hot loops can
/// update it with relaxed atomics and no lock. `done` only accumulates
/// within an epoch, which makes the derived `frac` monotone — exactly
/// what the stall watchdog and the telemetry smoke test rely on.
#[derive(Debug, Default)]
pub struct ProgressCell {
    /// Work units completed so far.
    pub done: AtomicU64,
    /// Best-known total work (0 = unknown; `frac` is then unreported).
    pub total: AtomicU64,
}

pub(crate) struct Inner {
    pub counters: BTreeMap<&'static str, &'static AtomicU64>,
    pub gauges: BTreeMap<&'static str, f64>,
    pub hists: BTreeMap<&'static str, &'static Histogram>,
    /// Per-phase progress cells, keyed by phase name.
    pub progress: BTreeMap<&'static str, &'static ProgressCell>,
    /// Span forest; node 0 is the synthetic root (never reported).
    pub nodes: Vec<SpanNode>,
    /// Innermost open span per live thread: tid → (epoch, node).
    pub active: BTreeMap<u64, (u64, usize)>,
    /// Pre-rendered JSON event lines.
    pub events: Vec<String>,
    pub events_dropped: u64,
    /// Keys already warned about (persists across `reset` — one-shot
    /// warnings are per process, not per run).
    pub warned: BTreeSet<&'static str>,
    /// Incremented by `reset`; stale span guards and thread-local span
    /// stacks detect it and no-op instead of touching freed node ids.
    pub epoch: u64,
}

impl Inner {
    fn new() -> Self {
        Self {
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            hists: BTreeMap::new(),
            progress: BTreeMap::new(),
            nodes: vec![SpanNode {
                name: "",
                parent: 0,
                children: Vec::new(),
                calls: 0,
                total_ns: 0,
            }],
            active: BTreeMap::new(),
            events: Vec::new(),
            events_dropped: 0,
            warned: BTreeSet::new(),
            epoch: 1,
        }
    }

    /// Finds or creates the child of `parent` named `name`.
    pub fn child(&mut self, parent: usize, name: &'static str) -> usize {
        if let Some(&c) = self.nodes[parent]
            .children
            .iter()
            .find(|&&c| self.nodes[c].name == name)
        {
            return c;
        }
        let id = self.nodes.len();
        self.nodes.push(SpanNode {
            name,
            parent,
            children: Vec::new(),
            calls: 0,
            total_ns: 0,
        });
        self.nodes[parent].children.push(id);
        id
    }

    pub fn push_event(&mut self, line: String) {
        if self.events.len() < MAX_EVENTS {
            self.events.push(line);
        } else {
            self.events_dropped += 1;
        }
    }

    /// Slash-joined path of span node `id` (walking parent links up to
    /// the synthetic root).
    pub fn node_path(&self, id: usize) -> String {
        let mut parts = Vec::new();
        let mut cur = id;
        while cur != 0 {
            parts.push(self.nodes[cur].name);
            cur = self.nodes[cur].parent;
        }
        parts.reverse();
        parts.join("/")
    }

    /// Appends the progress-derived gauges (`progress.<phase>.units` and,
    /// when the total is known, `progress.<phase>.frac`) to `out`.
    pub fn progress_gauges(&self, out: &mut Vec<(String, f64)>) {
        for (&phase, cell) in &self.progress {
            let done = cell.done.load(Relaxed);
            let total = cell.total.load(Relaxed);
            if done == 0 && total == 0 {
                continue;
            }
            out.push((format!("progress.{phase}.units"), done as f64));
            if total > 0 {
                let frac = (done as f64 / total as f64).min(1.0);
                out.push((format!("progress.{phase}.frac"), frac));
            }
        }
    }

    /// Active span path per live thread, tid-sorted; threads whose entry
    /// predates the current epoch are skipped.
    pub fn active_paths(&self) -> Vec<(u64, String)> {
        self.active
            .iter()
            .filter(|(_, &(e, _))| e == self.epoch)
            .map(|(&tid, &(_, node))| (tid, self.node_path(node)))
            .collect()
    }
}

pub(crate) fn inner() -> MutexGuard<'static, Inner> {
    static REGISTRY: OnceLock<Mutex<Inner>> = OnceLock::new();
    REGISTRY
        .get_or_init(|| Mutex::new(Inner::new()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// Returns the `'static` atomic behind counter `name`, creating it on
/// first use. Not gated on the log level — cache the handle and gate the
/// *updates* (see [`crate::counter_add`]).
pub fn counter(name: &'static str) -> &'static AtomicU64 {
    inner()
        .counters
        .entry(name)
        .or_insert_with(|| Box::leak(Box::new(AtomicU64::new(0))))
}

/// Returns the `'static` histogram behind `name`, creating it on first
/// use (same handle semantics as [`counter`]).
pub fn histogram(name: &'static str) -> &'static Histogram {
    inner()
        .hists
        .entry(name)
        .or_insert_with(|| Box::leak(Box::new(Histogram::new())))
}

/// Returns the `'static` progress cell for `phase`, creating it on first
/// use (same handle semantics as [`counter`]). Rendered in snapshots and
/// telemetry samples as the `progress.<phase>.{units,frac}` gauges.
pub fn progress_cell(phase: &'static str) -> &'static ProgressCell {
    inner()
        .progress
        .entry(phase)
        .or_insert_with(|| Box::leak(Box::new(ProgressCell::default())))
}

/// Aggregated statistics of one span path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanStat {
    /// Slash-joined path from the root, e.g. `active/sampling/chain`.
    pub path: String,
    /// Leaf name, e.g. `chain`.
    pub name: String,
    /// Path of the parent span (empty for roots).
    pub parent: String,
    /// Nesting depth (0 for roots).
    pub depth: usize,
    /// Completed calls.
    pub calls: u64,
    /// Total wall-clock nanoseconds across calls (monotonic clock).
    pub total_ns: u64,
}

impl SpanStat {
    /// Total duration as a [`Duration`].
    pub fn total(&self) -> Duration {
        Duration::from_nanos(self.total_ns)
    }
}

/// Frozen statistics of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistStat {
    /// Histogram name.
    pub name: String,
    /// Observation count.
    pub count: u64,
    /// Observation sum.
    pub sum: u64,
    /// Smallest observation (`None` when empty).
    pub min: Option<u64>,
    /// Largest observation (`None` when empty).
    pub max: Option<u64>,
    /// Non-empty buckets as `(lo, hi, count)`, ascending.
    pub buckets: Vec<(u64, u64, u64)>,
}

/// A point-in-time copy of the whole registry, safe to render or export
/// while instrumentation continues.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Span statistics in pre-order (parents before children).
    pub spans: Vec<SpanStat>,
    /// Counter values, name-sorted.
    pub counters: Vec<(String, u64)>,
    /// Gauge values, name-sorted (includes the derived
    /// `progress.<phase>.{units,frac}` gauges).
    pub gauges: Vec<(String, f64)>,
    /// Histogram statistics, name-sorted.
    pub hists: Vec<HistStat>,
    /// Raw JSON event lines in emission order.
    pub events: Vec<String>,
    /// Events discarded once the buffer cap was reached.
    pub events_dropped: u64,
    /// Innermost open span path per live thread, tid-sorted.
    pub active: Vec<(u64, String)>,
}

impl Snapshot {
    /// Looks up a counter value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |&(_, v)| v)
    }

    /// Looks up a span stat by its full path.
    pub fn span(&self, path: &str) -> Option<&SpanStat> {
        self.spans.iter().find(|s| s.path == path)
    }
}

/// Takes a consistent snapshot of the registry.
pub fn snapshot() -> Snapshot {
    let g = inner();
    let mut spans = Vec::new();
    // Pre-order walk from the synthetic root.
    let mut stack: Vec<(usize, usize, String)> = g.nodes[0]
        .children
        .iter()
        .rev()
        .map(|&c| (c, 0usize, String::new()))
        .collect();
    while let Some((id, depth, parent)) = stack.pop() {
        let node = &g.nodes[id];
        let path = if parent.is_empty() {
            node.name.to_string()
        } else {
            format!("{parent}/{}", node.name)
        };
        for &c in node.children.iter().rev() {
            stack.push((c, depth + 1, path.clone()));
        }
        spans.push(SpanStat {
            path: path.clone(),
            name: node.name.to_string(),
            parent,
            depth,
            calls: node.calls,
            total_ns: node.total_ns,
        });
    }
    let mut gauges: Vec<(String, f64)> =
        g.gauges.iter().map(|(&n, &v)| (n.to_string(), v)).collect();
    g.progress_gauges(&mut gauges);
    gauges.sort_by(|a, b| a.0.cmp(&b.0));
    Snapshot {
        spans,
        counters: g
            .counters
            .iter()
            .map(|(&n, c)| (n.to_string(), c.load(Relaxed)))
            .collect(),
        gauges,
        hists: g
            .hists
            .iter()
            .map(|(&n, h)| HistStat {
                name: n.to_string(),
                count: h.count(),
                sum: h.sum(),
                min: h.min(),
                max: h.max(),
                buckets: h.nonzero_buckets(),
            })
            .collect(),
        events: g.events.clone(),
        events_dropped: g.events_dropped,
        active: g.active_paths(),
    }
}

/// Resets every metric to the empty state. Counter and histogram handles
/// stay valid (values are zeroed in place); live span guards from before
/// the reset detect the epoch change and record nothing. One-shot
/// warning keys are *not* cleared — they are per process.
pub fn reset() {
    let mut g = inner();
    g.epoch += 1;
    g.nodes.truncate(1);
    g.nodes[0].children.clear();
    g.active.clear();
    for c in g.counters.values() {
        c.store(0, Relaxed);
    }
    for h in g.hists.values() {
        h.reset();
    }
    for p in g.progress.values() {
        p.done.store(0, Relaxed);
        p.total.store(0, Relaxed);
    }
    g.gauges.clear();
    g.events.clear();
    g.events_dropped = 0;
}

/// Serializes unit tests that mutate process-global state (the level,
/// `reset`): the registry is shared by every test in the binary.
#[cfg(test)]
pub(crate) fn test_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_handles_survive_reset() {
        let _l = test_lock();
        let c = counter("test.registry.survivor");
        c.store(41, Relaxed);
        c.fetch_add(1, Relaxed);
        assert_eq!(snapshot().counter("test.registry.survivor"), 42);
        reset();
        assert_eq!(snapshot().counter("test.registry.survivor"), 0);
        c.fetch_add(7, Relaxed);
        assert_eq!(snapshot().counter("test.registry.survivor"), 7);
    }

    #[test]
    fn event_buffer_overflow_counts_drops_and_reset_rearms() {
        let _l = test_lock();
        let prev = crate::level();
        crate::set_level(crate::Level::Info);
        reset();
        for _ in 0..MAX_EVENTS + 7 {
            crate::event("test.registry.overflow", &[]);
        }
        let s = snapshot();
        assert_eq!(s.events.len(), MAX_EVENTS);
        assert_eq!(s.events_dropped, 7);
        // Reset opens a new epoch: the buffer accepts events again and
        // the drop count starts over.
        reset();
        crate::event("test.registry.overflow", &[]);
        let s = snapshot();
        assert_eq!(s.events.len(), 1);
        assert_eq!(s.events_dropped, 0);
        crate::set_level(prev);
        reset();
    }

    #[test]
    fn snapshot_is_name_sorted() {
        counter("test.registry.zz");
        counter("test.registry.aa");
        let s = snapshot();
        let names: Vec<&str> = s
            .counters
            .iter()
            .map(|(n, _)| n.as_str())
            .filter(|n| n.starts_with("test.registry."))
            .collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
    }
}
