//! Peak-memory introspection for scale runs.
//!
//! The scale benches (and the CI memory-budget assert) need to know the
//! process's high-water resident set without any profiler attached. On
//! Linux the kernel tracks it for free: `VmHWM` in `/proc/self/status`
//! is the peak RSS in kB since process start (or the last reset via
//! `/proc/self/clear_refs`, which we never touch). Elsewhere there is
//! no portable zero-dependency source, so [`peak_rss_bytes`] returns 0
//! and consumers treat the measurement as unavailable.

/// The process's peak resident set size in bytes: `VmHWM` from
/// `/proc/self/status` on Linux, 0 on other platforms (and on any
/// read/parse failure — the measurement is best-effort by design).
pub fn peak_rss_bytes() -> u64 {
    #[cfg(target_os = "linux")]
    {
        std::fs::read_to_string("/proc/self/status")
            .ok()
            .and_then(|s| parse_vm_hwm(&s))
            .unwrap_or(0)
    }
    #[cfg(not(target_os = "linux"))]
    {
        0
    }
}

/// Reads the peak RSS and publishes it as the `mem.peak_rss_bytes`
/// gauge (when collection is enabled), returning the value either way.
/// Call at the end of a solve so the phase tree and JSONL stream carry
/// the run's high-water mark.
pub fn record_peak_rss() -> u64 {
    let bytes = peak_rss_bytes();
    crate::gauge_set("mem.peak_rss_bytes", bytes as f64);
    bytes
}

/// Extracts `VmHWM:  <n> kB` from a `/proc/self/status` dump.
#[cfg_attr(not(target_os = "linux"), allow(dead_code))]
fn parse_vm_hwm(status: &str) -> Option<u64> {
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line
        .strip_prefix("VmHWM:")?
        .trim()
        .trim_end_matches("kB")
        .trim()
        .parse()
        .ok()?;
    Some(kb * 1024)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_vm_hwm_line() {
        let status = "Name:\tmcc\nVmPeak:\t  999 kB\nVmHWM:\t  123456 kB\nVmRSS:\t 5 kB\n";
        assert_eq!(parse_vm_hwm(status), Some(123456 * 1024));
        assert_eq!(parse_vm_hwm("Name:\tmcc\n"), None);
        assert_eq!(parse_vm_hwm("VmHWM:\tgarbage kB\n"), None);
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn linux_reports_nonzero_peak() {
        // Any live process has touched at least a page.
        assert!(peak_rss_bytes() > 0);
    }
}
