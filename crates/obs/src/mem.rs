//! Memory introspection for scale runs and live telemetry.
//!
//! The scale benches (and the CI memory-budget assert) need the
//! process's high-water resident set, and the telemetry sampler needs
//! the *current* resident set, without any profiler attached. On Linux
//! the kernel tracks both for free: `VmHWM` and `VmRSS` in
//! `/proc/self/status` (kB; `VmHWM` is the peak since process start or
//! the last reset via `/proc/self/clear_refs`, which we never touch).
//!
//! # Platform behavior
//!
//! Elsewhere there is no portable zero-dependency source, so both
//! readings return 0 and a one-shot warning
//! (`mem.proc_status_unavailable`) is emitted the first time a reading
//! is attempted — consumers treat 0 as "measurement unavailable", never
//! as a real size. The same warning fires on Linux if
//! `/proc/self/status` cannot be read or parsed (e.g. a hardened
//! sandbox masking `/proc`).

/// Reads `/proc/self/status`, warning once per process when it is
/// unavailable (off-Linux, or `/proc` masked).
fn proc_self_status() -> Option<String> {
    #[cfg(target_os = "linux")]
    let status = std::fs::read_to_string("/proc/self/status").ok();
    #[cfg(not(target_os = "linux"))]
    let status: Option<String> = None;
    if status.is_none() {
        crate::warn_once(
            "mem.proc_status_unavailable",
            "/proc/self/status unavailable on this platform; \
             RSS gauges will read 0 (measurement unavailable)",
        );
    }
    status
}

/// The process's peak resident set size in bytes: `VmHWM` from
/// `/proc/self/status` on Linux; 0 (plus a one-shot warning) when the
/// source is unavailable — the measurement is best-effort by design.
pub fn peak_rss_bytes() -> u64 {
    proc_self_status()
        .and_then(|s| parse_kb_field(&s, "VmHWM:"))
        .unwrap_or(0)
}

/// The process's *current* resident set size in bytes: `VmRSS` from
/// `/proc/self/status` on Linux; 0 (plus a one-shot warning) when the
/// source is unavailable. Sampled live by the telemetry stream, where
/// peak-only numbers would hide deallocation phases.
pub fn current_rss_bytes() -> u64 {
    proc_self_status()
        .and_then(|s| parse_kb_field(&s, "VmRSS:"))
        .unwrap_or(0)
}

/// Reads the peak RSS and publishes it as the `mem.peak_rss_bytes`
/// gauge (when collection is enabled), returning the value either way.
/// Call at the end of a solve so the phase tree and JSONL stream carry
/// the run's high-water mark.
pub fn record_peak_rss() -> u64 {
    let bytes = peak_rss_bytes();
    crate::gauge_set("mem.peak_rss_bytes", bytes as f64);
    bytes
}

/// Extracts `<key>  <n> kB` from a `/proc/self/status` dump.
fn parse_kb_field(status: &str, key: &str) -> Option<u64> {
    let line = status.lines().find(|l| l.starts_with(key))?;
    let kb: u64 = line
        .strip_prefix(key)?
        .trim()
        .trim_end_matches("kB")
        .trim()
        .parse()
        .ok()?;
    Some(kb * 1024)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_kb_fields() {
        let status = "Name:\tmcc\nVmPeak:\t  999 kB\nVmHWM:\t  123456 kB\nVmRSS:\t 5 kB\n";
        assert_eq!(parse_kb_field(status, "VmHWM:"), Some(123456 * 1024));
        assert_eq!(parse_kb_field(status, "VmRSS:"), Some(5 * 1024));
        assert_eq!(parse_kb_field("Name:\tmcc\n", "VmHWM:"), None);
        assert_eq!(parse_kb_field("VmHWM:\tgarbage kB\n", "VmHWM:"), None);
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn linux_reports_nonzero_rss() {
        // Any live process has touched at least a page.
        assert!(peak_rss_bytes() > 0);
        assert!(current_rss_bytes() > 0);
        // Peak is at least the current resident set.
        assert!(peak_rss_bytes() >= current_rss_bytes());
    }
}
