//! Live telemetry: a background time-series sampler, a flight-recorder
//! ring, and a progress/stall watchdog.
//!
//! The snapshot sinks in [`crate::sink`] answer "what happened" after a
//! run ends; this module answers "what is happening" while a
//! multi-minute solve is still going, and "what was happening" when one
//! dies. An opt-in background thread ([`start`]) wakes every
//! `interval` and appends one `sample` JSON line to the `mc-obs/ts1`
//! stream: counter deltas since the previous tick, current gauges
//! (including the `progress.<phase>.*` gauges published by
//! [`Checkpoint::with_progress`](crate::cancel::Checkpoint::with_progress)),
//! the live resident set ([`crate::mem::current_rss_bytes`]), and the
//! innermost open span of every thread.
//!
//! Every emitted line is also kept in a fixed-size ring. When a solve
//! ends abnormally, [`dump`] appends a single `dump` line carrying the
//! ring (the last N samples/events), the active span stack of every
//! thread, and a registry snapshot — the autopsy record a timeout or
//! panic would otherwise discard.
//!
//! The watchdog rides inside the sampler thread: when
//! [`SamplerConfig::stall_window`] is set and the sum of all
//! `progress.*.units` gauges fails to advance for that long, it emits a
//! `stall` line (stream + ring + registry event) and, if an abort token
//! was supplied, cancels it so the solve unwinds cooperatively through
//! the existing [`CancelToken`] plumbing.
//!
//! # Cost discipline
//!
//! Nothing here touches the hot path. When the sampler is not running
//! (the default), no thread exists and [`flight_event`] is a single
//! relaxed load. Progress publication happens on the checkpoint slow
//! path only (once per `CHECK_INTERVAL` units). The sampler itself
//! takes the registry lock once per tick — at a 100 ms cadence that is
//! noise next to any solve worth watching.
//!
//! The stream schema is documented in `docs/OBSERVABILITY.md`.

use crate::cancel::CancelToken;
use crate::json::{Obj, Value};
use crate::registry;
use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, Write as _};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Schema tag of the time-series stream (the first line of every
/// telemetry file is a `meta` record carrying it).
pub const TS_SCHEMA: &str = "mc-obs/ts1";

/// Configuration for [`start`].
#[derive(Debug)]
pub struct SamplerConfig {
    /// Output file for the JSONL stream (truncated on start).
    pub path: PathBuf,
    /// Sampling cadence (default 100 ms).
    pub interval: Duration,
    /// How many recent lines the flight-recorder ring retains
    /// (default 64).
    pub ring_capacity: usize,
    /// Enables the stall watchdog: with no `progress.*.units` advance
    /// for this long, a `stall` line is emitted (default off).
    pub stall_window: Option<Duration>,
    /// Token the watchdog cancels when it detects a stall (typically
    /// the solve's own token, so the run unwinds as `Cancelled`).
    pub abort: Option<CancelToken>,
    /// Extra fields for the leading `meta` line (tool name, n, seed).
    pub meta: Vec<(String, Value)>,
}

impl SamplerConfig {
    /// A sampler writing to `path` with the default 100 ms cadence, a
    /// 64-line ring, and no watchdog.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        Self {
            path: path.into(),
            interval: Duration::from_millis(100),
            ring_capacity: 64,
            stall_window: None,
            abort: None,
            meta: Vec::new(),
        }
    }
}

/// State shared between the sampler thread and the control functions.
struct Shared {
    file: Mutex<File>,
    ring: Mutex<VecDeque<String>>,
    ring_capacity: usize,
    stop: AtomicBool,
    start: Instant,
}

impl Shared {
    fn t_ms(&self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }

    fn lock_file(&self) -> MutexGuard<'_, File> {
        self.file.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Appends `line` to both the stream and the flight-recorder ring.
    fn emit(&self, line: String) {
        {
            let mut f = self.lock_file();
            let _ = writeln!(f, "{line}");
        }
        let mut ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        if ring.len() == self.ring_capacity {
            ring.pop_front();
        }
        ring.push_back(line);
    }
}

struct Handle {
    shared: Arc<Shared>,
    join: JoinHandle<()>,
}

/// Fast "is a sampler running" gate so [`flight_event`] costs one
/// relaxed load when telemetry is off.
static RUNNING: AtomicBool = AtomicBool::new(false);

fn state() -> &'static Mutex<Option<Handle>> {
    static STATE: OnceLock<Mutex<Option<Handle>>> = OnceLock::new();
    STATE.get_or_init(|| Mutex::new(None))
}

fn shared() -> Option<Arc<Shared>> {
    state()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .as_ref()
        .map(|h| Arc::clone(&h.shared))
}

/// Starts the background sampler. Returns `Ok(true)` when a new sampler
/// was spawned, `Ok(false)` when one is already running (idempotent —
/// the existing sampler keeps its configuration). The leading `meta`
/// line is written synchronously, so a bad path fails here, not later
/// in the thread.
pub fn start(config: SamplerConfig) -> io::Result<bool> {
    let mut guard = state().lock().unwrap_or_else(|e| e.into_inner());
    if guard.is_some() {
        return Ok(false);
    }
    let mut file = File::create(&config.path)?;
    let mut meta = Obj::new().str("type", "meta").str("schema", TS_SCHEMA);
    if let Some(sha) = crate::meta::git_sha() {
        meta = meta.str("git_sha", &sha);
    }
    meta = meta
        .u64("pid", u64::from(std::process::id()))
        .u64("interval_ms", config.interval.as_millis() as u64)
        .u64("ring_capacity", config.ring_capacity as u64)
        .u64("threads_available", crate::meta::available_threads());
    if let Some(w) = config.stall_window {
        meta = meta
            .u64("stall_window_ms", w.as_millis() as u64)
            .bool("watch_abort", config.abort.is_some());
    }
    for (k, v) in &config.meta {
        meta = meta.value(k, v);
    }
    writeln!(file, "{}", meta.finish())?;
    let shared = Arc::new(Shared {
        file: Mutex::new(file),
        ring: Mutex::new(VecDeque::with_capacity(config.ring_capacity.max(1))),
        ring_capacity: config.ring_capacity.max(1),
        stop: AtomicBool::new(false),
        start: Instant::now(),
    });
    let thread_shared = Arc::clone(&shared);
    let join = std::thread::Builder::new()
        .name("mc-obs-sampler".into())
        .spawn(move || run(&thread_shared, &config))?;
    *guard = Some(Handle { shared, join });
    RUNNING.store(true, Relaxed);
    Ok(true)
}

/// Whether a sampler is currently running (one relaxed load).
pub fn is_running() -> bool {
    RUNNING.load(Relaxed)
}

/// Stops the sampler: the thread takes one final sample, the stream is
/// flushed, and the file is closed. Returns whether a sampler was
/// actually running (so a second `stop` is a no-op, not an error).
pub fn stop() -> bool {
    let handle = state().lock().unwrap_or_else(|e| e.into_inner()).take();
    let Some(h) = handle else {
        return false;
    };
    RUNNING.store(false, Relaxed);
    h.shared.stop.store(true, Relaxed);
    let _ = h.join.join();
    let _ = h.shared.lock_file().flush();
    true
}

/// Records a structured event into the telemetry stream and the flight
/// ring (e.g. a portfolio worker panic). No-op (one relaxed load) when
/// no sampler is running.
pub fn flight_event(name: &str, fields: &[(&str, Value)]) {
    if !RUNNING.load(Relaxed) {
        return;
    }
    let Some(sh) = shared() else {
        return;
    };
    let mut obj = Obj::new()
        .str("type", "event")
        .str("name", name)
        .u64("t_ms", sh.t_ms());
    for (k, v) in fields {
        obj = obj.value(k, v);
    }
    sh.emit(obj.finish());
}

/// Appends a flight-recorder `dump` line — the ring of recent
/// samples/events, every thread's active span stack, current RSS, and
/// a registry counter/gauge snapshot — to the telemetry stream. Call
/// when a solve ends abnormally (timeout, cancellation, budget, panic,
/// stall), *before* [`stop`]. Returns whether a dump was written (false
/// when no sampler is running — there is no ring to dump).
pub fn dump(reason: &str) -> bool {
    let Some(sh) = shared() else {
        return false;
    };
    let read = registry_read();
    let samples: Vec<String> = {
        let ring = sh.ring.lock().unwrap_or_else(|e| e.into_inner());
        ring.iter().cloned().collect()
    };
    let mut arr = String::from("[");
    for (i, s) in samples.iter().enumerate() {
        if i > 0 {
            arr.push(',');
        }
        arr.push_str(s);
    }
    arr.push(']');
    let line = Obj::new()
        .str("type", "dump")
        .str("reason", reason)
        .u64("t_ms", sh.t_ms())
        .u64("rss_bytes", crate::mem::current_rss_bytes())
        .raw("threads", &threads_json(&read.threads))
        .raw("counters", &counters_json(&read.counters))
        .raw("gauges", &gauges_json(&read.gauges))
        .raw("samples", &arr)
        .finish();
    let mut f = sh.lock_file();
    let _ = writeln!(f, "{line}");
    let _ = f.flush();
    true
}

/// One consistent read of what the sampler needs: counter values,
/// gauges (stored + progress-derived), and per-thread active spans.
/// Cheaper than [`crate::snapshot`] — no span-forest walk, no event
/// buffer clone.
struct RegistryRead {
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, f64)>,
    threads: Vec<(u64, String)>,
}

fn registry_read() -> RegistryRead {
    let g = registry::inner();
    let counters = g
        .counters
        .iter()
        .map(|(&n, c)| (n.to_string(), c.load(Relaxed)))
        .collect();
    let mut gauges: Vec<(String, f64)> =
        g.gauges.iter().map(|(&n, &v)| (n.to_string(), v)).collect();
    g.progress_gauges(&mut gauges);
    gauges.sort_by(|a, b| a.0.cmp(&b.0));
    let threads = g.active_paths();
    RegistryRead {
        counters,
        gauges,
        threads,
    }
}

fn threads_json(threads: &[(u64, String)]) -> String {
    let mut arr = String::from("[");
    for (i, (tid, span)) in threads.iter().enumerate() {
        if i > 0 {
            arr.push(',');
        }
        let _ = write!(
            arr,
            r#"{{"tid":{tid},"span":"{}"}}"#,
            crate::json::escape(span)
        );
    }
    arr.push(']');
    arr
}

fn counters_json(counters: &[(String, u64)]) -> String {
    let mut obj = Obj::new();
    for (name, v) in counters {
        obj = obj.u64(name, *v);
    }
    obj.finish()
}

fn gauges_json(gauges: &[(String, f64)]) -> String {
    let mut obj = Obj::new();
    for (name, v) in gauges {
        obj = obj.f64(name, *v);
    }
    obj.finish()
}

/// Watchdog bookkeeping across ticks.
struct Watch {
    last_units: f64,
    last_advance: Instant,
    tripped: bool,
}

/// The sampler thread body: sample immediately (so even sub-interval
/// runs record at least one live sample), then once per interval until
/// stopped, with one final sample on the way out.
fn run(sh: &Shared, config: &SamplerConfig) {
    let mut last_counters: BTreeMap<String, u64> = BTreeMap::new();
    let mut seq = 0u64;
    let mut watch = Watch {
        last_units: 0.0,
        last_advance: Instant::now(),
        tripped: false,
    };
    loop {
        take_sample(sh, config, &mut last_counters, &mut seq, &mut watch);
        // Sleep in short slices so stop() returns promptly even with a
        // long sampling interval.
        let deadline = Instant::now() + config.interval;
        loop {
            if sh.stop.load(Relaxed) {
                take_sample(sh, config, &mut last_counters, &mut seq, &mut watch);
                return;
            }
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            std::thread::sleep((deadline - now).min(Duration::from_millis(5)));
        }
    }
}

fn take_sample(
    sh: &Shared,
    config: &SamplerConfig,
    last_counters: &mut BTreeMap<String, u64>,
    seq: &mut u64,
    watch: &mut Watch,
) {
    let read = registry_read();
    // Counter deltas since the previous sample; zero deltas are elided
    // so idle counters do not bloat every line.
    let mut deltas = Obj::new();
    for (name, v) in &read.counters {
        let prev = last_counters.insert(name.clone(), *v).unwrap_or(0);
        if *v > prev {
            deltas = deltas.u64(name, *v - prev);
        }
    }
    let line = Obj::new()
        .str("type", "sample")
        .u64("seq", *seq)
        .u64("t_ms", sh.t_ms())
        .u64("rss_bytes", crate::mem::current_rss_bytes())
        .raw("counters", &deltas.finish())
        .raw("gauges", &gauges_json(&read.gauges))
        .raw("threads", &threads_json(&read.threads))
        .finish();
    sh.emit(line);
    *seq += 1;

    let Some(window) = config.stall_window else {
        return;
    };
    // `+ 0.0` normalizes the empty sum, whose identity is -0.0, so the
    // stall line never prints "units":-0.
    let units: f64 = read
        .gauges
        .iter()
        .filter(|(n, _)| n.starts_with("progress.") && n.ends_with(".units"))
        .map(|&(_, v)| v)
        .sum::<f64>()
        + 0.0;
    if units > watch.last_units {
        watch.last_units = units;
        watch.last_advance = Instant::now();
        watch.tripped = false;
    } else if !watch.tripped && watch.last_advance.elapsed() >= window {
        watch.tripped = true;
        let aborted = config.abort.is_some();
        let stall = Obj::new()
            .str("type", "stall")
            .u64("t_ms", sh.t_ms())
            .u64("window_ms", window.as_millis() as u64)
            .f64("units", units)
            .bool("aborted", aborted)
            .raw("threads", &threads_json(&read.threads))
            .finish();
        sh.emit(stall);
        crate::event(
            "telemetry.stall",
            &[
                ("window_ms", Value::U(window.as_millis() as u64)),
                ("aborted", Value::B(aborted)),
            ],
        );
        if let Some(token) = &config.abort {
            token.cancel();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cancel::{CancelToken, Checkpoint, CHECK_INTERVAL};

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("mc-obs-ts-{tag}-{}.jsonl", std::process::id()))
    }

    /// Extracts a bare numeric `"key":value` field from a JSONL line.
    fn field_f64(line: &str, key: &str) -> Option<f64> {
        let tag = format!("\"{key}\":");
        let i = line.find(&tag)? + tag.len();
        let rest = &line[i..];
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        rest[..end].parse().ok()
    }

    #[test]
    fn start_and_stop_are_idempotent() {
        let _l = crate::registry::test_lock();
        let path = temp_path("idem");
        assert!(start(SamplerConfig::new(&path)).unwrap());
        assert!(
            !start(SamplerConfig::new(&path)).unwrap(),
            "second start must be a no-op"
        );
        assert!(is_running());
        flight_event("test.telemetry.mark", &[("k", Value::U(1))]);
        assert!(dump("test-reason"));
        assert!(stop());
        assert!(!is_running());
        assert!(!stop(), "second stop must be a no-op");
        let text = std::fs::read_to_string(&path).unwrap();
        let first = text.lines().next().unwrap();
        assert!(first.contains(r#""schema":"mc-obs/ts1""#), "{first}");
        // Immediate first sample + final sample on stop: even a
        // sub-interval run records at least two.
        let samples = text
            .lines()
            .filter(|l| l.contains(r#""type":"sample""#))
            .count();
        assert!(samples >= 2, "{text}");
        assert!(
            text.contains(r#""type":"event","name":"test.telemetry.mark""#),
            "{text}"
        );
        assert!(
            text.contains(r#""type":"dump","reason":"test-reason""#),
            "{text}"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn flight_event_and_dump_are_noops_without_a_sampler() {
        let _l = crate::registry::test_lock();
        flight_event("test.telemetry.orphan", &[]);
        assert!(!dump("no-sampler"));
    }

    #[test]
    fn sampler_records_counter_deltas_and_monotone_progress() {
        let _l = crate::registry::test_lock();
        let prev = crate::level();
        crate::set_level(crate::Level::Info);
        crate::reset();
        let path = temp_path("deltas");
        let mut config = SamplerConfig::new(&path);
        config.interval = Duration::from_millis(5);
        assert!(start(config).unwrap());
        let token = CancelToken::new();
        {
            let mut cp = Checkpoint::with_progress(&token, "test_ts_phase", 4 * CHECK_INTERVAL);
            for _ in 0..4 {
                crate::counter_add("test.ts.work", 10);
                let _ = cp.tick(CHECK_INTERVAL);
                std::thread::sleep(Duration::from_millis(8));
            }
        }
        stop();
        let text = std::fs::read_to_string(&path).unwrap();
        let samples: Vec<&str> = text
            .lines()
            .filter(|l| l.contains(r#""type":"sample""#))
            .collect();
        assert!(samples.len() >= 2, "{text}");
        // Per-sample counter deltas reconcile with the total: zero
        // deltas are elided, nonzero ones sum back to what was added.
        let delta_sum: f64 = samples
            .iter()
            .filter_map(|l| field_f64(l, "test.ts.work"))
            .sum();
        assert_eq!(delta_sum, 40.0, "{text}");
        // The derived frac gauge is monotone and ends complete.
        let mut last = -1.0;
        for s in &samples {
            if let Some(f) = field_f64(s, "progress.test_ts_phase.frac") {
                assert!(f >= last, "frac regressed: {s}");
                last = f;
            }
        }
        assert_eq!(last, 1.0, "{text}");
        let _ = std::fs::remove_file(&path);
        crate::set_level(prev);
        crate::reset();
    }
}
