//! Output sinks: a human-readable phase-tree summary and a
//! machine-readable JSON-lines stream.
//!
//! Every JSONL line is a flat object with a `"type"` discriminator:
//! `meta`, `span`, `counter`, `gauge`, `histogram`, or `event` (plus
//! `warn` for one-shot warnings). The schema is documented in
//! `docs/OBSERVABILITY.md`.

use crate::json::{Obj, Value};
use crate::registry::Snapshot;
use std::fmt::Write as _;
use std::io;

/// Formats a nanosecond duration with a human-friendly unit.
pub fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Renders the snapshot as an indented phase tree followed by counter,
/// gauge, and histogram sections. Empty sections are omitted.
pub fn render_phase_tree(s: &Snapshot) -> String {
    let mut out = String::new();
    if !s.spans.is_empty() {
        out.push_str("phase timings:\n");
        // Parent totals for percentage-of-parent annotations.
        for span in &s.spans {
            let label = format!("{}{}", "  ".repeat(span.depth + 1), span.name);
            let _ = write!(
                out,
                "{label:<40} calls={:<6} total={:>10}",
                span.calls,
                fmt_ns(span.total_ns)
            );
            if let Some(parent) = s.span(&span.parent) {
                if parent.total_ns > 0 {
                    let pct = 100.0 * span.total_ns as f64 / parent.total_ns as f64;
                    let _ = write!(out, "  ({pct:.1}% of {})", parent.name);
                }
            }
            out.push('\n');
        }
    }
    if !s.counters.is_empty() {
        out.push_str("counters:\n");
        for (name, v) in &s.counters {
            let _ = writeln!(out, "  {name:<40} {v}");
        }
    }
    if !s.gauges.is_empty() {
        out.push_str("gauges:\n");
        for (name, v) in &s.gauges {
            let _ = writeln!(out, "  {name:<40} {v}");
        }
    }
    if !s.hists.is_empty() {
        out.push_str("histograms:\n");
        for h in &s.hists {
            let _ = write!(out, "  {:<40} n={} sum={}", h.name, h.count, h.sum);
            if let (Some(lo), Some(hi)) = (h.min, h.max) {
                let _ = write!(out, " min={lo} max={hi}");
            }
            out.push('\n');
            for &(lo, hi, c) in &h.buckets {
                let _ = writeln!(out, "    [{lo}, {hi}] {c}");
            }
        }
    }
    if s.events_dropped > 0 {
        let _ = writeln!(
            out,
            "(+{} events dropped past buffer cap)",
            s.events_dropped
        );
    }
    out
}

/// Renders the snapshot's metric lines (spans, counters, gauges,
/// histograms, buffered events) as JSONL strings without trailing
/// newlines. The `meta` line is *not* included — see [`write_jsonl`].
pub fn jsonl_lines(s: &Snapshot) -> Vec<String> {
    let mut lines = Vec::new();
    for span in &s.spans {
        lines.push(
            Obj::new()
                .str("type", "span")
                .str("path", &span.path)
                .str("name", &span.name)
                .str("parent", &span.parent)
                .u64("depth", span.depth as u64)
                .u64("calls", span.calls)
                .u64("total_ns", span.total_ns)
                .finish(),
        );
    }
    for (name, v) in &s.counters {
        lines.push(
            Obj::new()
                .str("type", "counter")
                .str("name", name)
                .u64("value", *v)
                .finish(),
        );
    }
    for (name, v) in &s.gauges {
        lines.push(
            Obj::new()
                .str("type", "gauge")
                .str("name", name)
                .f64("value", *v)
                .finish(),
        );
    }
    for h in &s.hists {
        let mut buckets = String::from("[");
        for (i, &(lo, hi, c)) in h.buckets.iter().enumerate() {
            if i > 0 {
                buckets.push(',');
            }
            let _ = write!(buckets, "[{lo},{hi},{c}]");
        }
        buckets.push(']');
        let mut obj = Obj::new()
            .str("type", "histogram")
            .str("name", &h.name)
            .u64("count", h.count)
            .u64("sum", h.sum);
        if let (Some(lo), Some(hi)) = (h.min, h.max) {
            obj = obj.u64("min", lo).u64("max", hi);
        }
        lines.push(obj.raw("buckets", &buckets).finish());
    }
    lines.extend(s.events.iter().cloned());
    lines
}

/// Writes the full JSONL stream: one leading `meta` line (git SHA,
/// thread count, caller-supplied fields such as seed and effective
/// env values) followed by every metric line of the snapshot.
pub fn write_jsonl(
    w: &mut dyn io::Write,
    s: &Snapshot,
    extra_meta: &[(&str, Value)],
) -> io::Result<()> {
    let mut meta = Obj::new().str("type", "meta").str("schema", "mc-obs/1");
    if let Some(sha) = crate::meta::git_sha() {
        meta = meta.str("git_sha", &sha);
    }
    meta = meta.u64("threads_available", crate::meta::available_threads());
    meta = meta.u64("peak_rss_bytes", crate::mem::peak_rss_bytes());
    for (k, v) in extra_meta {
        meta = meta.value(k, v);
    }
    if s.events_dropped > 0 {
        meta = meta.u64("events_dropped", s.events_dropped);
    }
    writeln!(w, "{}", meta.finish())?;
    for line in jsonl_lines(s) {
        writeln!(w, "{line}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{HistStat, SpanStat};

    fn sample_snapshot() -> Snapshot {
        Snapshot {
            spans: vec![
                SpanStat {
                    path: "active".into(),
                    name: "active".into(),
                    parent: String::new(),
                    depth: 0,
                    calls: 1,
                    total_ns: 2_000_000,
                },
                SpanStat {
                    path: "active/sampling".into(),
                    name: "sampling".into(),
                    parent: "active".into(),
                    depth: 1,
                    calls: 3,
                    total_ns: 1_000_000,
                },
            ],
            counters: vec![("oracle.attempts".into(), 42)],
            gauges: vec![("passive.cut_weight".into(), 1.5)],
            hists: vec![HistStat {
                name: "sampling.probes_per_chain".into(),
                count: 2,
                sum: 10,
                min: Some(3),
                max: Some(7),
                buckets: vec![(2, 3, 1), (4, 7, 1)],
            }],
            events: vec![r#"{"type":"event","name":"x"}"#.into()],
            events_dropped: 0,
            active: Vec::new(),
        }
    }

    #[test]
    fn phase_tree_mentions_every_section() {
        let text = render_phase_tree(&sample_snapshot());
        assert!(text.contains("phase timings:"));
        assert!(text.contains("active"));
        assert!(text.contains("sampling"));
        assert!(text.contains("(50.0% of active)"));
        assert!(text.contains("oracle.attempts"));
        assert!(text.contains("passive.cut_weight"));
        assert!(text.contains("sampling.probes_per_chain"));
    }

    #[test]
    fn jsonl_lines_carry_type_tags() {
        let lines = jsonl_lines(&sample_snapshot());
        assert_eq!(lines.len(), 2 + 1 + 1 + 1 + 1);
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert!(line.contains(r#""type":""#), "{line}");
        }
        assert!(lines
            .iter()
            .any(|l| l.contains(r#""buckets":[[2,3,1],[4,7,1]]"#)));
    }

    #[test]
    fn write_jsonl_leads_with_meta() {
        let mut buf = Vec::new();
        write_jsonl(
            &mut buf,
            &sample_snapshot(),
            &[("seed", Value::U(7)), ("tool", Value::S("test".into()))],
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        let first = text.lines().next().unwrap();
        assert!(first.contains(r#""type":"meta""#));
        assert!(first.contains(r#""schema":"mc-obs/1""#));
        assert!(first.contains(r#""seed":7"#));
        assert!(first.contains(r#""tool":"test""#));
        assert!(first.contains(r#""peak_rss_bytes":"#));
    }

    #[test]
    fn meta_line_reports_dropped_events() {
        let mut snap = sample_snapshot();
        snap.events_dropped = 12;
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &snap, &[]).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let first = text.lines().next().unwrap();
        assert!(first.contains(r#""events_dropped":12"#), "{first}");
        // Absent when nothing was dropped, so the common case stays lean.
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &sample_snapshot(), &[]).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(!text.lines().next().unwrap().contains("events_dropped"));
    }

    #[test]
    fn fmt_ns_units() {
        assert_eq!(fmt_ns(17), "17ns");
        assert_eq!(fmt_ns(1_700), "1.7µs");
        assert_eq!(fmt_ns(2_500_000), "2.50ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.00s");
    }
}
