//! Run-metadata helpers: git revision and environment stamps for
//! reproducible benchmark artifacts.
//!
//! The git SHA is read straight from `.git` files (`HEAD`, loose refs,
//! `packed-refs`) — no subprocess, so it works in sandboxes without a
//! `git` binary on `PATH`.

use std::fs;
use std::path::{Path, PathBuf};

/// Best-effort git commit SHA of the repository containing the current
/// working directory. Returns `None` outside a git checkout or on any
/// read/parse failure.
pub fn git_sha() -> Option<String> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let dot_git = dir.join(".git");
        if dot_git.exists() {
            return sha_from_git_dir(&resolve_git_dir(&dot_git)?);
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Resolves `.git` to the actual git directory (it is a `gitdir: <path>`
/// pointer file in worktrees and submodules).
fn resolve_git_dir(dot_git: &Path) -> Option<PathBuf> {
    if dot_git.is_dir() {
        return Some(dot_git.to_path_buf());
    }
    let contents = fs::read_to_string(dot_git).ok()?;
    let target = contents.strip_prefix("gitdir:")?.trim();
    let path = Path::new(target);
    Some(if path.is_absolute() {
        path.to_path_buf()
    } else {
        dot_git.parent()?.join(path)
    })
}

fn sha_from_git_dir(git_dir: &Path) -> Option<String> {
    let head = fs::read_to_string(git_dir.join("HEAD")).ok()?;
    let head = head.trim();
    if let Some(refname) = head.strip_prefix("ref:") {
        let refname = refname.trim();
        // Loose ref first, then packed-refs.
        if let Ok(sha) = fs::read_to_string(git_dir.join(refname)) {
            return valid_sha(sha.trim());
        }
        let packed = fs::read_to_string(git_dir.join("packed-refs")).ok()?;
        for line in packed.lines() {
            if let Some(sha) = line.strip_suffix(refname) {
                if let Some(sha) = valid_sha(sha.trim()) {
                    return Some(sha);
                }
            }
        }
        None
    } else {
        // Detached HEAD: the file holds the SHA itself.
        valid_sha(head)
    }
}

fn valid_sha(s: &str) -> Option<String> {
    (s.len() == 40 && s.bytes().all(|b| b.is_ascii_hexdigit())).then(|| s.to_string())
}

/// Number of logical CPUs the runtime reports (0 when unknown).
pub fn available_threads() -> u64 {
    std::thread::available_parallelism().map_or(0, |n| n.get() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sha_validation() {
        assert_eq!(valid_sha(""), None);
        assert_eq!(valid_sha("not-a-sha"), None);
        let sha = "0123456789abcdef0123456789abcdef01234567";
        assert_eq!(valid_sha(sha), Some(sha.to_string()));
        assert_eq!(valid_sha(&sha[..39]), None);
    }

    #[test]
    fn git_sha_in_this_repo_resolves() {
        // The workspace is a git checkout, so this should produce a SHA;
        // tolerate None only if the checkout is somehow bare.
        if let Some(sha) = git_sha() {
            assert_eq!(sha.len(), 40);
        }
    }
}
