//! Lock-free log-bucketed histograms.
//!
//! Values are `u64`s (callers pick the unit — nanoseconds, probes,
//! edges). Bucket 0 holds exactly the value 0; bucket `k ≥ 1` holds the
//! half-open power-of-two range `[2^(k-1), 2^k)`. 65 buckets cover the
//! whole `u64` domain, so `record` never clamps. All updates are relaxed
//! atomics: concurrent recording from `parallel_chunks` workers is safe
//! and cheap, and exact cross-thread ordering is irrelevant for
//! aggregate statistics.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Number of buckets: one for zero plus one per power of two.
pub const NUM_BUCKETS: usize = 65;

/// A concurrent log-bucketed histogram.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

/// Index of the bucket holding `v`.
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive `(lo, hi)` bounds of bucket `k`.
pub fn bucket_bounds(k: usize) -> (u64, u64) {
    assert!(k < NUM_BUCKETS, "bucket index out of range");
    if k == 0 {
        (0, 0)
    } else if k == 64 {
        (1 << 63, u64::MAX)
    } else {
        (1 << (k - 1), (1 << k) - 1)
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub const fn new() -> Self {
        // `AtomicU64::new` is const, but array-repeat needs a const
        // item; each use site gets its own fresh atomic, which is
        // exactly what we want here (not the shared-state footgun the
        // lint guards against).
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Self {
            buckets: [ZERO; NUM_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        self.sum.fetch_add(v, Relaxed);
        self.min.fetch_min(v, Relaxed);
        self.max.fetch_max(v, Relaxed);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Relaxed)
    }

    /// Sum of recorded observations (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.sum.load(Relaxed)
    }

    /// Smallest recorded value (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.count() > 0).then(|| self.min.load(Relaxed))
    }

    /// Largest recorded value (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.count() > 0).then(|| self.max.load(Relaxed))
    }

    /// Occupancy of bucket `k`.
    pub fn bucket(&self, k: usize) -> u64 {
        self.buckets[k].load(Relaxed)
    }

    /// The non-empty buckets as `(lo, hi, count)` triples, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64, u64)> {
        (0..NUM_BUCKETS)
            .filter_map(|k| {
                let c = self.bucket(k);
                (c > 0).then(|| {
                    let (lo, hi) = bucket_bounds(k);
                    (lo, hi, c)
                })
            })
            .collect()
    }

    /// Approximate `q`-quantile (`0.0 ≤ q ≤ 1.0`) read off the log
    /// buckets: finds the bucket containing the observation of rank
    /// `⌈q·count⌉` and returns its upper bound, clamped to the observed
    /// maximum — exact for bucket 0 (the value 0) and for the top rank,
    /// otherwise an at-most-2× overestimate (the bucket width). `None`
    /// when the histogram is empty or `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let count = self.count();
        if count == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for k in 0..NUM_BUCKETS {
            seen += self.bucket(k);
            if seen >= rank {
                let (_, hi) = bucket_bounds(k);
                // The global max lives in some bucket ≥ k, so clamping
                // never drops below this bucket's lower bound.
                return Some(hi.min(self.max.load(Relaxed)));
            }
        }
        Some(self.max.load(Relaxed))
    }

    /// Resets every statistic to the empty state.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Relaxed);
        }
        self.count.store(0, Relaxed);
        self.sum.store(0, Relaxed);
        self.min.store(u64::MAX, Relaxed);
        self.max.store(0, Relaxed);
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_are_powers_of_two() {
        // Exhaustive edge cases: each boundary value lands in the right
        // bucket, and bounds round-trip.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_index(1 << 63), 64);
        assert_eq!(bucket_index((1 << 63) - 1), 63);
        for k in 0..NUM_BUCKETS {
            let (lo, hi) = bucket_bounds(k);
            assert_eq!(bucket_index(lo), k, "lo of bucket {k}");
            assert_eq!(bucket_index(hi), k, "hi of bucket {k}");
            if k > 0 {
                assert_eq!(bucket_index(lo - 1), k - 1, "below lo of bucket {k}");
            }
        }
    }

    #[test]
    fn records_accumulate() {
        let h = Histogram::new();
        for v in [0u64, 1, 2, 3, 100, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 206);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(100));
        assert_eq!(h.bucket(0), 1); // 0
        assert_eq!(h.bucket(1), 1); // 1
        assert_eq!(h.bucket(2), 2); // 2, 3
        assert_eq!(h.bucket(7), 2); // 100 ∈ [64, 127]
        let nz = h.nonzero_buckets();
        assert_eq!(nz.len(), 4);
        assert!(nz.contains(&(64, 127, 2)));
    }

    #[test]
    fn empty_histogram_has_no_extrema() {
        let h = Histogram::new();
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert!(h.nonzero_buckets().is_empty());
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn quantiles_walk_the_buckets() {
        let h = Histogram::new();
        // 90 observations of 1, 10 of 1000: p50 sits in bucket [1,1],
        // p99 in 1000's bucket, clamped to the observed max.
        for _ in 0..90 {
            h.record(1);
        }
        for _ in 0..10 {
            h.record(1000);
        }
        assert_eq!(h.quantile(0.5), Some(1));
        assert_eq!(h.quantile(0.9), Some(1));
        assert_eq!(h.quantile(0.99), Some(1000));
        assert_eq!(h.quantile(1.0), Some(1000));
        // q = 0 is the rank-1 observation.
        assert_eq!(h.quantile(0.0), Some(1));
        // Out-of-range q is rejected, not clamped.
        assert_eq!(h.quantile(1.5), None);
        assert_eq!(h.quantile(-0.1), None);
    }

    #[test]
    fn quantile_never_exceeds_max() {
        let h = Histogram::new();
        for v in [3u64, 5, 9, 900, 1_000_000] {
            h.record(v);
        }
        for q in [0.0, 0.25, 0.5, 0.75, 0.99, 1.0] {
            let est = h.quantile(q).expect("non-empty");
            assert!(est <= h.max().expect("non-empty"), "q {q} est {est}");
        }
    }

    #[test]
    fn reset_clears_everything() {
        let h = Histogram::new();
        h.record(5);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn concurrent_records_are_lossless() {
        let h = Histogram::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for v in 0..1000u64 {
                        h.record(v);
                    }
                });
            }
        });
        assert_eq!(h.count(), 8000);
        assert_eq!(h.sum(), 8 * (999 * 1000 / 2));
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(999));
    }
}
