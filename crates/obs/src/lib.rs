//! `mc-obs` — zero-dependency observability substrate for the monotone
//! classification pipeline.
//!
//! Provides hierarchical [spans](span) with monotonic timing,
//! [counters](counter_add), [gauges](gauge_set), log-bucketed
//! [histograms](record), ad-hoc [events](event), and one-shot
//! [warnings](warn_once), all feeding a single thread-safe global
//! registry. Two sinks render a [`Snapshot`]: a human-readable phase
//! tree ([`sink::render_phase_tree`]) and a JSON-lines stream
//! ([`sink::write_jsonl`]). For long solves, the [`telemetry`] module
//! adds a live time-series sampler, a flight-recorder ring, and a
//! progress/stall watchdog on top of the same registry.
//!
//! # Enabling
//!
//! Collection is off by default. Set `MC_LOG=info` (or `debug`/`trace`)
//! in the environment, or call [`set_level`] programmatically (the `mcc
//! --trace` flag does the latter). The default level is `warn`: one-shot
//! warnings print, but spans/counters/histograms are skipped.
//!
//! # Cost when disabled
//!
//! Every instrumentation entry point starts with [`enabled`] — a single
//! relaxed atomic load — and returns before allocating or locking. Hot
//! loops should additionally hoist the check and accumulate locally:
//!
//! ```
//! let mut paths = 0u64;
//! for _round in 0..3 {
//!     paths += 1; // plain integer increment on the hot path
//! }
//! mc_obs::counter_add("flow.augmenting_paths", paths); // one gated call
//! ```

pub mod cancel;
pub mod hist;
pub mod json;
pub mod mem;
pub mod meta;
mod registry;
pub mod sink;
mod span;
pub mod telemetry;

pub use cancel::{CancelCause, CancelToken, Cancelled, Checkpoint};
pub use hist::Histogram;
pub use mem::{current_rss_bytes, peak_rss_bytes, record_peak_rss};
pub use registry::{
    counter, histogram, progress_cell, reset, snapshot, HistStat, ProgressCell, Snapshot, SpanStat,
};
pub use span::SpanGuard;

use json::{Obj, Value};
use std::sync::atomic::{AtomicU8, Ordering::Relaxed};

/// Verbosity levels, ordered: each level includes everything below it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Nothing, not even warnings.
    Off = 0,
    /// Fatal diagnostics only.
    Error = 1,
    /// One-shot warnings (the default).
    Warn = 2,
    /// Spans, counters, gauges, histograms, events.
    Info = 3,
    /// Plus fine-grained events (per-chain, per-level detail).
    Debug = 4,
    /// Everything.
    Trace = 5,
}

impl Level {
    fn from_u8(v: u8) -> Level {
        match v {
            0 => Level::Off,
            1 => Level::Error,
            2 => Level::Warn,
            3 => Level::Info,
            4 => Level::Debug,
            _ => Level::Trace,
        }
    }

    /// Parses a `MC_LOG` value. Accepts names (case-insensitive) and
    /// the numeric aliases 0–5.
    pub fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "0" | "none" => Some(Level::Off),
            "error" | "1" => Some(Level::Error),
            "warn" | "warning" | "2" => Some(Level::Warn),
            "info" | "3" => Some(Level::Info),
            "debug" | "4" => Some(Level::Debug),
            "trace" | "5" => Some(Level::Trace),
            _ => None,
        }
    }

    /// Canonical lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            Level::Off => "off",
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }
}

/// Sentinel meaning "not yet initialized from `MC_LOG`".
const LEVEL_UNSET: u8 = 0xFF;
static LEVEL: AtomicU8 = AtomicU8::new(LEVEL_UNSET);

#[cold]
fn init_level_from_env() -> Level {
    let parsed = std::env::var("MC_LOG").ok().and_then(|v| Level::parse(&v));
    let level = parsed.unwrap_or(Level::Warn);
    LEVEL.store(level as u8, Relaxed);
    if parsed.is_none() {
        if let Ok(v) = std::env::var("MC_LOG") {
            warn_once(
                "mc_log.invalid",
                &format!("MC_LOG={v:?} is not a valid level; using \"warn\""),
            );
        }
    }
    level
}

/// The current verbosity level (lazily initialized from `MC_LOG`,
/// defaulting to [`Level::Warn`]).
pub fn level() -> Level {
    let v = LEVEL.load(Relaxed);
    if v == LEVEL_UNSET {
        init_level_from_env()
    } else {
        Level::from_u8(v)
    }
}

/// Overrides the level (e.g. from `mcc --trace`). Takes precedence over
/// `MC_LOG` from that point on.
pub fn set_level(l: Level) {
    LEVEL.store(l as u8, Relaxed);
}

/// Whether metric collection (spans/counters/histograms/events) is on —
/// true at [`Level::Info`] and above. One relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    level() >= Level::Info
}

/// Whether fine-grained debug events are on ([`Level::Debug`] and up).
#[inline]
pub fn debug_enabled() -> bool {
    level() >= Level::Debug
}

/// Opens a span named `name`, nesting under the innermost open span of
/// the current thread. Timing is recorded when the returned guard drops.
/// No-op (no allocation) when collection is disabled.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    span::enter(name)
}

/// Adds `delta` to counter `name`. No-op when collection is disabled.
/// Hot loops should accumulate locally and flush once (see crate docs).
#[inline]
pub fn counter_add(name: &'static str, delta: u64) {
    if enabled() {
        counter(name).fetch_add(delta, Relaxed);
    }
}

/// Sets gauge `name` to `v` (last write wins). No-op when disabled.
pub fn gauge_set(name: &'static str, v: f64) {
    if enabled() {
        registry::inner().gauges.insert(name, v);
    }
}

/// Records one observation into histogram `name`. No-op when disabled.
#[inline]
pub fn record(name: &'static str, v: u64) {
    if enabled() {
        histogram(name).record(v);
    }
}

/// Emits a structured event with ad-hoc fields into the event buffer
/// (capped; overflow is counted, not stored). No-op when disabled.
pub fn event(name: &str, fields: &[(&str, Value)]) {
    if !enabled() {
        return;
    }
    let mut obj = Obj::new().str("type", "event").str("name", name);
    for (k, v) in fields {
        obj = obj.value(k, v);
    }
    registry::inner().push_event(obj.finish());
}

/// Like [`event`] but gated at [`Level::Debug`] — for per-chain /
/// per-level detail that would be noise at `info`.
pub fn debug_event(name: &str, fields: &[(&str, Value)]) {
    if debug_enabled() {
        event(name, fields);
    }
}

/// Prints `msg` to stderr and records a `warn` event, at most once per
/// process for a given `key`. Active at [`Level::Warn`] and above (the
/// default), so misconfiguration is visible without any `MC_LOG` set.
pub fn warn_once(key: &'static str, msg: &str) {
    if level() < Level::Warn {
        return;
    }
    let mut g = registry::inner();
    if !g.warned.insert(key) {
        return;
    }
    let line = Obj::new()
        .str("type", "warn")
        .str("key", key)
        .str("msg", msg)
        .finish();
    g.push_event(line);
    drop(g);
    eprintln!("[mc-obs warn] {msg}");
}

#[cfg(test)]
mod tests {
    use super::*;

    // Note: these tests share one global registry and level with every
    // other test in this binary, so they use unique metric names and
    // delta-based assertions, and force the level explicitly.

    #[test]
    fn level_parsing_and_names() {
        assert_eq!(Level::parse("info"), Some(Level::Info));
        assert_eq!(Level::parse("TRACE"), Some(Level::Trace));
        assert_eq!(Level::parse(" 2 "), Some(Level::Warn));
        assert_eq!(Level::parse("bogus"), None);
        assert_eq!(Level::parse(""), None);
        for l in [
            Level::Off,
            Level::Error,
            Level::Warn,
            Level::Info,
            Level::Debug,
            Level::Trace,
        ] {
            assert_eq!(Level::parse(l.name()), Some(l));
        }
        assert!(Level::Off < Level::Warn && Level::Warn < Level::Trace);
    }

    #[test]
    fn disabled_collection_is_inert() {
        let _l = crate::registry::test_lock();
        let prev = level();
        set_level(Level::Warn);
        let before = snapshot().counter("test.lib.gated");
        counter_add("test.lib.gated", 5);
        record("test.lib.gated_hist", 5);
        {
            let _g = span("test_lib_gated_span");
        }
        let s = snapshot();
        assert_eq!(s.counter("test.lib.gated"), before);
        assert!(s.span("test_lib_gated_span").is_none());
        set_level(prev);
    }

    #[test]
    fn enabled_collection_counts_and_nests() {
        let _l = crate::registry::test_lock();
        let prev = level();
        set_level(Level::Info);
        let before = snapshot().counter("test.lib.live");
        counter_add("test.lib.live", 3);
        {
            let _outer = span("test_lib_outer");
            let _inner = span("test_lib_inner");
        }
        gauge_set("test.lib.gauge", 2.5);
        let s = snapshot();
        assert_eq!(s.counter("test.lib.live"), before + 3);
        let inner = s
            .span("test_lib_outer/test_lib_inner")
            .expect("nested span");
        assert_eq!(inner.depth, 1);
        assert_eq!(inner.parent, "test_lib_outer");
        assert!(inner.calls >= 1);
        assert!(s
            .gauges
            .iter()
            .any(|(n, v)| n == "test.lib.gauge" && *v == 2.5));
        set_level(prev);
    }

    #[test]
    fn warn_once_fires_once() {
        let _l = crate::registry::test_lock();
        let prev = level();
        set_level(Level::Warn);
        warn_once("test.lib.warnkey", "first");
        warn_once("test.lib.warnkey", "second");
        let warns: Vec<_> = snapshot()
            .events
            .iter()
            .filter(|e| e.contains("test.lib.warnkey"))
            .cloned()
            .collect();
        assert_eq!(warns.len(), 1);
        assert!(warns[0].contains("first"));
        set_level(prev);
    }

    #[test]
    fn events_respect_debug_gate() {
        let _l = crate::registry::test_lock();
        let prev = level();
        set_level(Level::Info);
        event("test.lib.event", &[("k", Value::U(1))]);
        debug_event("test.lib.debug_event", &[]);
        let s = snapshot();
        assert!(s.events.iter().any(|e| e.contains("test.lib.event")));
        assert!(!s.events.iter().any(|e| e.contains("test.lib.debug_event")));
        set_level(Level::Debug);
        debug_event("test.lib.debug_event", &[]);
        assert!(snapshot()
            .events
            .iter()
            .any(|e| e.contains("test.lib.debug_event")));
        set_level(prev);
    }
}
