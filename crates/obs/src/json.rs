//! Minimal hand-rolled JSON emission (this crate is dependency-free, so
//! no serde). Only what the JSONL sink needs: string escaping, an object
//! builder, and a tagged value type for ad-hoc event fields.

use std::fmt::Write as _;

/// Escapes `s` for inclusion inside a JSON string literal (quotes not
/// included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    escape_into(s, &mut out);
    out
}

fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Writes an `f64` as a JSON number (`null` for non-finite values, which
/// JSON cannot represent).
fn push_f64(buf: &mut String, v: f64) {
    if v.is_finite() {
        // Rust's shortest-roundtrip Display for floats is valid JSON.
        let _ = write!(buf, "{v}");
    } else {
        buf.push_str("null");
    }
}

/// A dynamically-typed JSON scalar, used for ad-hoc event fields.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U(u64),
    /// Signed integer.
    I(i64),
    /// Float (`null` if non-finite).
    F(f64),
    /// Boolean.
    B(bool),
    /// String (escaped on write).
    S(String),
}

impl Value {
    fn push_into(&self, buf: &mut String) {
        match self {
            Value::U(v) => {
                let _ = write!(buf, "{v}");
            }
            Value::I(v) => {
                let _ = write!(buf, "{v}");
            }
            Value::F(v) => push_f64(buf, *v),
            Value::B(v) => {
                let _ = write!(buf, "{v}");
            }
            Value::S(v) => {
                buf.push('"');
                escape_into(v, buf);
                buf.push('"');
            }
        }
    }
}

/// A single-line JSON object builder.
///
/// ```
/// use mc_obs::json::Obj;
/// let line = Obj::new().str("type", "meta").u64("n", 3).finish();
/// assert_eq!(line, r#"{"type":"meta","n":3}"#);
/// ```
#[derive(Debug, Clone)]
pub struct Obj {
    buf: String,
    first: bool,
}

impl Obj {
    /// Starts an empty object.
    pub fn new() -> Self {
        Self {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, k: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        self.buf.push('"');
        escape_into(k, &mut self.buf);
        self.buf.push_str("\":");
    }

    /// Adds a string field.
    pub fn str(mut self, k: &str, v: &str) -> Self {
        self.key(k);
        self.buf.push('"');
        escape_into(v, &mut self.buf);
        self.buf.push('"');
        self
    }

    /// Adds an unsigned integer field.
    pub fn u64(mut self, k: &str, v: u64) -> Self {
        self.key(k);
        let _ = write!(self.buf, "{v}");
        self
    }

    /// Adds a float field (`null` when non-finite).
    pub fn f64(mut self, k: &str, v: f64) -> Self {
        self.key(k);
        push_f64(&mut self.buf, v);
        self
    }

    /// Adds a boolean field.
    pub fn bool(mut self, k: &str, v: bool) -> Self {
        self.key(k);
        let _ = write!(self.buf, "{v}");
        self
    }

    /// Adds a pre-rendered JSON value verbatim (caller guarantees
    /// validity — used for arrays and nested objects).
    pub fn raw(mut self, k: &str, v: &str) -> Self {
        self.key(k);
        self.buf.push_str(v);
        self
    }

    /// Adds a tagged [`Value`] field.
    pub fn value(mut self, k: &str, v: &Value) -> Self {
        self.key(k);
        v.push_into(&mut self.buf);
        self
    }

    /// Closes the object, returning the rendered line (no trailing
    /// newline).
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

impl Default for Obj {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("плюс ≥ emoji ✓"), "плюс ≥ emoji ✓");
    }

    #[test]
    fn object_builder_renders_all_types() {
        let line = Obj::new()
            .str("s", "x\"y")
            .u64("u", 7)
            .f64("f", 1.5)
            .f64("nan", f64::NAN)
            .bool("b", true)
            .raw("arr", "[1,2]")
            .value("v", &Value::I(-3))
            .finish();
        assert_eq!(
            line,
            r#"{"s":"x\"y","u":7,"f":1.5,"nan":null,"b":true,"arr":[1,2],"v":-3}"#
        );
    }

    #[test]
    fn empty_object() {
        assert_eq!(Obj::new().finish(), "{}");
    }

    #[test]
    fn float_display_is_json_safe() {
        let line = Obj::new().f64("x", 1.0).f64("y", 0.25).finish();
        assert_eq!(line, r#"{"x":1,"y":0.25}"#);
    }
}
