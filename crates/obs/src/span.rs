//! Hierarchical spans with monotonic timing.
//!
//! A span is entered with [`crate::span`] and recorded into the global
//! forest when its guard drops. Nesting is tracked per thread: the guard
//! remembers the previous thread-local position and restores it on drop,
//! so `span("active")` followed by `span("sampling")` aggregates under
//! the path `active/sampling`. When tracing is disabled the guard is a
//! `None` — entering and dropping it costs one relaxed atomic load and
//! no allocation.

use crate::registry;
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::time::Instant;

thread_local! {
    /// `(epoch, node)` of the innermost open span on this thread. A
    /// stale epoch (after a registry reset, or the initial `(0, 0)`)
    /// resolves to the synthetic root.
    static CURRENT: Cell<(u64, usize)> = const { Cell::new((0, 0)) };

    /// Small stable per-thread id for the registry's active-span map
    /// (`ThreadId` has no stable integer form on stable Rust).
    static TID: u64 = {
        static NEXT: AtomicU64 = AtomicU64::new(1);
        NEXT.fetch_add(1, Relaxed)
    };
}

/// This thread's stable small integer id (used by telemetry samples).
pub(crate) fn tid() -> u64 {
    TID.with(|t| *t)
}

struct Active {
    node: usize,
    epoch: u64,
    prev: (u64, usize),
    start: Instant,
}

/// RAII guard for an open span; records timing on drop.
///
/// Returned by [`crate::span`]. Hold it for the duration of the phase:
///
/// ```
/// let _g = mc_obs::span("example_phase");
/// // ... phase work ...
/// ```
#[must_use = "a span records nothing unless its guard is held"]
pub struct SpanGuard(Option<Active>);

pub(crate) fn enter(name: &'static str) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard(None);
    }
    let mut g = registry::inner();
    let epoch = g.epoch;
    let parent = CURRENT.with(|c| {
        let (e, n) = c.get();
        if e == epoch {
            n
        } else {
            0
        }
    });
    let node = g.child(parent, name);
    // The active-span map rides on the lock we already hold; telemetry
    // samples read it to report what every thread is doing right now.
    g.active.insert(tid(), (epoch, node));
    drop(g);
    let prev = CURRENT.with(|c| c.replace((epoch, node)));
    SpanGuard(Some(Active {
        node,
        epoch,
        prev,
        start: Instant::now(),
    }))
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(a) = self.0.take() {
            let elapsed_ns = a.start.elapsed().as_nanos() as u64;
            let mut g = registry::inner();
            // Skip recording if the registry was reset while this span
            // was open — the node id now belongs to a dead forest.
            if g.epoch == a.epoch {
                let node = &mut g.nodes[a.node];
                node.calls += 1;
                node.total_ns += elapsed_ns;
                // Restore (or retire) this thread's active-span entry.
                if a.prev.0 == a.epoch && a.prev.1 != 0 {
                    g.active.insert(tid(), a.prev);
                } else {
                    g.active.remove(&tid());
                }
            }
            drop(g);
            CURRENT.with(|c| c.set(a.prev));
        }
    }
}
