//! Cooperative cancellation: a shared flag + optional deadline that hot
//! loops poll at bounded intervals.
//!
//! The portfolio runtime races several engines on the same immutable
//! inputs and cancels the losers the moment a winner is certified. That
//! only works if every engine's hot loops — Dinic BFS/DFS phases,
//! push-relabel discharge, Hopcroft–Karp rounds, dominance-index build
//! chunks — periodically ask "should I still be running?". This module
//! provides the shared primitive they poll. It lives in `mc-obs` for the
//! same reason the counters do: it is cross-cutting runtime substrate,
//! and `mc-obs` is the one crate every other workspace crate already
//! links (`mc-flow` and `mc-geom` have no other common dependency).
//!
//! # Design
//!
//! * [`CancelToken`] is a cheap-to-clone handle (one `Arc`) over an
//!   atomic state plus an optional monotonic deadline. `cancel()` and
//!   deadline expiry are sticky and record *why* the token stopped
//!   ([`CancelCause::Explicit`] vs [`CancelCause::Deadline`]) so callers
//!   can map the two to distinct errors (`McError::Cancelled` vs
//!   `McError::Timeout` in `mc-core`).
//! * [`CancelToken::never`] costs nothing (no allocation) and makes the
//!   non-cancellable entry points zero-overhead wrappers over the
//!   cancellable ones.
//! * [`Checkpoint`] amortizes polling: hot loops `tick(units)` with
//!   their natural work measure (edges scanned, words ANDed, pushes)
//!   and the token is actually consulted only once per
//!   [`CHECK_INTERVAL`] units, so cancellation latency is bounded by a
//!   constant amount of work — not by a phase or a solve — while the
//!   fast path stays a single integer add.
//!
//! ```
//! use mc_obs::cancel::{CancelToken, Checkpoint};
//!
//! let token = CancelToken::new();
//! let mut cp = Checkpoint::new(&token);
//! for _edge in 0..10_000 {
//!     if cp.tick(1).is_err() {
//!         return; // cancelled: unwind cooperatively
//!     }
//! }
//! ```

use crate::registry::{progress_cell, ProgressCell};
use std::sync::atomic::{AtomicU8, Ordering::Relaxed};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How often (in caller-defined work units) [`Checkpoint`] consults its
/// token. 64Ki units keeps the common-case cost of cancellation support
/// at one integer add per unit while bounding cancellation latency to
/// the time a hot loop needs to burn ~64k units (microseconds for the
/// word/edge-granularity loops that tick it).
pub const CHECK_INTERVAL: u64 = 64 * 1024;

const LIVE: u8 = 0;
const CANCELLED: u8 = 1;
const EXPIRED: u8 = 2;

/// Why a [`CancelToken`] stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelCause {
    /// Someone called [`CancelToken::cancel`] (e.g. the race coordinator
    /// after another engine won).
    Explicit,
    /// The token's deadline passed.
    Deadline,
}

/// Error returned by cancellable operations when their token stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cancelled {
    /// Why the operation was stopped.
    pub cause: CancelCause,
}

impl std::fmt::Display for Cancelled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.cause {
            CancelCause::Explicit => f.write_str("operation cancelled"),
            CancelCause::Deadline => f.write_str("operation deadline expired"),
        }
    }
}

impl std::error::Error for Cancelled {}

#[derive(Debug)]
struct Inner {
    state: AtomicU8,
    deadline: Option<Instant>,
}

/// A shared cooperative-cancellation handle.
///
/// Cloning shares the underlying state: cancelling any clone stops all
/// of them. The default token ([`CancelToken::never`]) has no shared
/// state at all and never stops.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Option<Arc<Inner>>,
}

impl CancelToken {
    /// A live token with no deadline; stops only via [`cancel`](Self::cancel).
    pub fn new() -> Self {
        Self {
            inner: Some(Arc::new(Inner {
                state: AtomicU8::new(LIVE),
                deadline: None,
            })),
        }
    }

    /// A live token that additionally expires `limit` from now.
    pub fn with_deadline(limit: Duration) -> Self {
        Self {
            inner: Some(Arc::new(Inner {
                state: AtomicU8::new(LIVE),
                deadline: Some(Instant::now() + limit),
            })),
        }
    }

    /// A token that never stops. Free to construct (no allocation);
    /// every poll short-circuits. Non-cancellable public APIs wrap
    /// their cancellable twins with this.
    pub fn never() -> Self {
        Self { inner: None }
    }

    /// Requests cancellation. Sticky; idempotent; a deadline that
    /// already fired wins (the first recorded cause is kept).
    pub fn cancel(&self) {
        if let Some(inner) = &self.inner {
            let _ = inner
                .state
                .compare_exchange(LIVE, CANCELLED, Relaxed, Relaxed);
        }
    }

    /// `true` iff the token has stopped (cancelled or expired). Only
    /// reads the atomic — does **not** check the clock; use
    /// [`poll`](Self::poll) (or a [`Checkpoint`]) inside loops so
    /// deadlines actually fire.
    pub fn is_stopped(&self) -> bool {
        match &self.inner {
            Some(inner) => inner.state.load(Relaxed) != LIVE,
            None => false,
        }
    }

    /// Why the token stopped, if it has.
    pub fn cause(&self) -> Option<CancelCause> {
        let inner = self.inner.as_ref()?;
        match inner.state.load(Relaxed) {
            CANCELLED => Some(CancelCause::Explicit),
            EXPIRED => Some(CancelCause::Deadline),
            _ => None,
        }
    }

    /// Checks the flag *and* the deadline, recording expiry so later
    /// polls (and other clones) observe it without re-reading the
    /// clock. The cancellable entry points call this at phase
    /// boundaries; hot loops go through [`Checkpoint`] instead.
    pub fn poll(&self) -> Result<(), Cancelled> {
        let Some(inner) = &self.inner else {
            return Ok(());
        };
        match inner.state.load(Relaxed) {
            CANCELLED => Err(Cancelled {
                cause: CancelCause::Explicit,
            }),
            EXPIRED => Err(Cancelled {
                cause: CancelCause::Deadline,
            }),
            _ => match inner.deadline {
                Some(d) if Instant::now() >= d => {
                    let _ = inner
                        .state
                        .compare_exchange(LIVE, EXPIRED, Relaxed, Relaxed);
                    // Re-read: a concurrent cancel() may have won the race.
                    self.poll()
                }
                _ => Ok(()),
            },
        }
    }
}

/// Amortized poller for hot loops: counts work units locally and
/// consults the token once per [`CHECK_INTERVAL`] units.
///
/// Deliberately *not* `Clone`: each worker loop owns its own checkpoint
/// so the unit counters never contend.
///
/// With [`with_progress`](Self::with_progress), the checkpoint also
/// publishes the units it has counted into a shared per-phase
/// [`ProgressCell`] — but only on the existing slow path (once per
/// [`CHECK_INTERVAL`] units) and on drop, so live progress reporting
/// costs the hot loop nothing beyond the subtract-and-branch it already
/// pays for cancellation.
#[derive(Debug)]
pub struct Checkpoint<'t> {
    token: &'t CancelToken,
    /// Units until the next poll (counts down; ≤ 0 triggers).
    budget: i64,
    /// Shared progress cell to flush spent units into (`None` unless
    /// collection was enabled at construction).
    progress: Option<&'static ProgressCell>,
}

impl<'t> Checkpoint<'t> {
    /// A checkpoint that polls `token` every [`CHECK_INTERVAL`] units.
    pub fn new(token: &'t CancelToken) -> Self {
        Self {
            token,
            budget: CHECK_INTERVAL as i64,
            progress: None,
        }
    }

    /// A checkpoint that additionally publishes its ticked units as
    /// `progress.<phase>.units`, with `total_hint` seeding the phase's
    /// work-budget estimate. The first nonzero hint of an epoch wins
    /// and later hints are ignored: a stable total keeps the derived
    /// `progress.<phase>.frac` monotone, which the stall watchdog and
    /// the CI telemetry smoke rely on (parallel workers all pass the
    /// same global total, so "first wins" is not a race in practice).
    /// When collection is disabled this is exactly [`new`](Self::new):
    /// no cell is touched and the single-relaxed-load discipline holds.
    pub fn with_progress(token: &'t CancelToken, phase: &'static str, total_hint: u64) -> Self {
        let progress = if crate::enabled() {
            let cell = progress_cell(phase);
            if total_hint > 0 {
                let _ = cell.total.compare_exchange(0, total_hint, Relaxed, Relaxed);
            }
            Some(cell)
        } else {
            None
        };
        Self {
            token,
            budget: CHECK_INTERVAL as i64,
            progress,
        }
    }

    /// Records `units` of work; polls the token when the interval is
    /// spent. The fast path (interval not yet spent, or a `never`
    /// token) is a subtract and a branch.
    #[inline]
    pub fn tick(&mut self, units: u64) -> Result<(), Cancelled> {
        self.budget -= units as i64;
        if self.budget <= 0 {
            self.flush_spent();
            self.budget = CHECK_INTERVAL as i64;
            self.token.poll()?;
        }
        Ok(())
    }

    /// Publishes the units consumed since the last flush (runs only on
    /// the slow path and on drop, never per tick).
    #[cold]
    fn flush_spent(&self) {
        if let Some(cell) = self.progress {
            let spent = CHECK_INTERVAL as i64 - self.budget;
            if spent > 0 {
                cell.done.fetch_add(spent as u64, Relaxed);
            }
        }
    }
}

impl Drop for Checkpoint<'_> {
    fn drop(&mut self) {
        // Flush the sub-interval remainder so short loops still report.
        self.flush_spent();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_token_never_stops() {
        let t = CancelToken::never();
        t.cancel();
        assert!(!t.is_stopped());
        assert!(t.poll().is_ok());
        assert_eq!(t.cause(), None);
        let mut cp = Checkpoint::new(&t);
        for _ in 0..4 {
            assert!(cp.tick(CHECK_INTERVAL).is_ok());
        }
    }

    #[test]
    fn cancel_is_sticky_and_shared() {
        let t = CancelToken::new();
        let clone = t.clone();
        assert!(t.poll().is_ok());
        clone.cancel();
        assert!(t.is_stopped());
        assert_eq!(
            t.poll(),
            Err(Cancelled {
                cause: CancelCause::Explicit
            })
        );
        assert_eq!(t.cause(), Some(CancelCause::Explicit));
        t.cancel(); // idempotent
        assert_eq!(t.cause(), Some(CancelCause::Explicit));
    }

    #[test]
    fn deadline_expiry_reports_deadline_cause() {
        let t = CancelToken::with_deadline(Duration::from_millis(0));
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(
            t.poll(),
            Err(Cancelled {
                cause: CancelCause::Deadline
            })
        );
        assert_eq!(t.cause(), Some(CancelCause::Deadline));
        // Expiry is sticky: a later cancel() does not rewrite the cause.
        t.cancel();
        assert_eq!(t.cause(), Some(CancelCause::Deadline));
    }

    #[test]
    fn is_stopped_does_not_consult_the_clock() {
        let t = CancelToken::with_deadline(Duration::from_millis(0));
        std::thread::sleep(Duration::from_millis(2));
        // Only poll() turns the expired clock into a stopped state.
        assert!(!t.is_stopped());
        assert!(t.poll().is_err());
        assert!(t.is_stopped());
    }

    #[test]
    fn checkpoint_fires_within_one_interval() {
        let t = CancelToken::new();
        t.cancel();
        let mut cp = Checkpoint::new(&t);
        let mut ticks = 0u64;
        let step = 1_000u64;
        loop {
            if cp.tick(step).is_err() {
                break;
            }
            ticks += step;
            assert!(ticks <= CHECK_INTERVAL + step, "checkpoint never fired");
        }
    }

    #[test]
    fn checkpoint_handles_oversized_ticks() {
        let t = CancelToken::new();
        t.cancel();
        let mut cp = Checkpoint::new(&t);
        assert!(cp.tick(CHECK_INTERVAL * 10).is_err());
    }

    #[test]
    fn oversized_ticks_on_live_token_flush_progress() {
        let _l = crate::registry::test_lock();
        let prev = crate::level();
        crate::set_level(crate::Level::Info);
        crate::reset();
        let t = CancelToken::new();
        {
            let mut cp = Checkpoint::with_progress(&t, "test_cancel_oversized", CHECK_INTERVAL * 8);
            // A tick far past the interval polls (live token: Ok) and
            // flushes the full spent amount, not one interval's worth.
            assert!(cp.tick(CHECK_INTERVAL * 10).is_ok());
        } // drop flushes any sub-interval remainder
        let cell = progress_cell("test_cancel_oversized");
        assert_eq!(cell.done.load(Relaxed), CHECK_INTERVAL * 10);
        assert_eq!(cell.total.load(Relaxed), CHECK_INTERVAL * 8);
        // done > total still reports frac = 1 (capped), keeping the
        // derived gauge monotone for the watchdog.
        let snap = crate::snapshot();
        let frac = snap
            .gauges
            .iter()
            .find(|(n, _)| n == "progress.test_cancel_oversized.frac")
            .expect("frac gauge published")
            .1;
        assert_eq!(frac, 1.0);
        crate::set_level(prev);
        crate::reset();
    }

    #[test]
    fn first_nonzero_total_hint_wins() {
        let _l = crate::registry::test_lock();
        let prev = crate::level();
        crate::set_level(crate::Level::Info);
        crate::reset();
        let t = CancelToken::new();
        let _a = Checkpoint::with_progress(&t, "test_cancel_hint", 100);
        let _b = Checkpoint::with_progress(&t, "test_cancel_hint", 999); // ignored
        let _c = Checkpoint::with_progress(&t, "test_cancel_hint", 0); // no-op hint
        assert_eq!(progress_cell("test_cancel_hint").total.load(Relaxed), 100);
        crate::set_level(prev);
        crate::reset();
    }

    #[test]
    fn with_progress_is_inert_when_collection_is_off() {
        let _l = crate::registry::test_lock();
        let prev = crate::level();
        crate::set_level(crate::Level::Warn);
        crate::reset();
        let t = CancelToken::new();
        {
            let mut cp = Checkpoint::with_progress(&t, "test_cancel_gated", CHECK_INTERVAL);
            assert!(cp.tick(CHECK_INTERVAL * 2).is_ok());
        }
        // The phase cell was never registered, let alone written.
        let snap = crate::snapshot();
        assert!(
            !snap
                .gauges
                .iter()
                .any(|(n, _)| n.starts_with("progress.test_cancel_gated")),
            "disabled checkpoint leaked progress gauges"
        );
        crate::set_level(prev);
        crate::reset();
    }

    #[test]
    fn cancelled_error_displays_cause() {
        let c = Cancelled {
            cause: CancelCause::Explicit,
        };
        assert_eq!(c.to_string(), "operation cancelled");
        let d = Cancelled {
            cause: CancelCause::Deadline,
        };
        assert_eq!(d.to_string(), "operation deadline expired");
    }
}
