//! Width equivalence of the banded shard engine with the sequential
//! engines (ISSUE 9 acceptance matrix).
//!
//! The contract is *bit-identical width, not identical chains*: the
//! sharded decomposition must report exactly the width (and antichain
//! size) of the bitset and list engines on every input — including
//! duplicates, signed zeros, infinite sentinels, uniform point sets,
//! and shard counts from degenerate (1) to far past the band count.
//! Every sharded solve is also `validate()`d, which re-verifies the
//! König antichain certificate (`antichain.len() == chains.len()` plus
//! pairwise incomparability) on the shard path.

use mc_chains::{with_matching_override, ChainDecomposition, MatchingEngine};
use mc_geom::{DominanceIndex, PointSet, RankOracle};
use proptest::prelude::*;

/// Same palette as the bitset equivalence suite: duplicates, `-0.0`
/// vs `0.0` ties, and infinities all occur with high probability.
const PALETTE: [f64; 8] = [
    f64::NEG_INFINITY,
    -0.0,
    0.0,
    -1.5,
    1.0,
    2.0,
    3.25,
    f64::INFINITY,
];

fn point_sets(max_n: usize, dim: usize) -> impl Strategy<Value = PointSet> {
    prop::collection::vec(prop::collection::vec(0usize..PALETTE.len(), dim), 0..max_n).prop_map(
        move |rows| {
            let mut points = PointSet::new(dim);
            for row in rows {
                let coords: Vec<f64> = row.into_iter().map(|i| PALETTE[i]).collect();
                points.push(&coords);
            }
            points
        },
    )
}

/// Sharded vs bitset vs list, at several shard counts.
fn check_shard_agrees(points: &PointSet) {
    let index = DominanceIndex::build(points);
    let oracle = RankOracle::build(points);
    let bitset = ChainDecomposition::compute_with_engine(&index, MatchingEngine::Bitset);
    let list = ChainDecomposition::compute_with_engine(&index, MatchingEngine::List);
    assert_eq!(bitset.width(), list.width(), "sequential engines disagree");
    for shards in [1usize, 2, 3, 5, 16] {
        let sh = ChainDecomposition::compute_sharded(&oracle, shards);
        sh.validate(points).unwrap();
        assert_eq!(sh.width(), bitset.width(), "shards {shards}: width differs");
        assert_eq!(
            sh.antichain().len(),
            bitset.antichain().len(),
            "shards {shards}: antichain size differs"
        );
    }
    // The index-path dispatcher must route to the same result.
    let via_override = with_matching_override(MatchingEngine::Shard, Some(4), || {
        ChainDecomposition::compute_from_index(&index)
    });
    via_override.validate(points).unwrap();
    assert_eq!(via_override.width(), bitset.width());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn shard_agrees_d1(points in point_sets(40, 1)) {
        check_shard_agrees(&points);
    }

    #[test]
    fn shard_agrees_d2(points in point_sets(32, 2)) {
        check_shard_agrees(&points);
    }

    #[test]
    fn shard_agrees_d3(points in point_sets(24, 3)) {
        check_shard_agrees(&points);
    }

    #[test]
    fn shard_agrees_d4(points in point_sets(20, 4)) {
        check_shard_agrees(&points);
    }

    /// Heavy duplication: dup groups span band-sized runs, exercising
    /// the never-straddle band invariant and the equal-point stitch
    /// tie-break.
    #[test]
    fn shard_agrees_with_heavy_duplicates(rows in prop::collection::vec(0usize..4, 0..40)) {
        let mut points = PointSet::new(2);
        for r in rows {
            let v = r as f64;
            points.push(&[v, 3.0 - v]);
        }
        check_shard_agrees(&points);
    }

    /// Uniform labels edge case from the acceptance matrix: every point
    /// identical — one dup class, one band, one chain.
    #[test]
    fn shard_agrees_on_uniform_sets(n in 0usize..60, coord in 0usize..PALETTE.len()) {
        let mut points = PointSet::new(3);
        for _ in 0..n {
            points.push(&[PALETTE[coord]; 3]);
        }
        check_shard_agrees(&points);
    }
}

#[test]
fn shard_agrees_on_figure1() {
    let points = mc_chains::test_support::figure1_like_points();
    check_shard_agrees(&points);
    let oracle = RankOracle::build(&points);
    assert_eq!(ChainDecomposition::compute_sharded(&oracle, 3).width(), 6);
}

#[test]
fn env_dispatch_routes_to_shard_engine() {
    // `with_matching_override` beats the environment and carries the
    // shard count; malformed MC_SHARDS handling is covered in the unit
    // tests (warn_once + bitset fallback).
    let points = mc_chains::test_support::figure1_like_points();
    let index = DominanceIndex::build(&points);
    for shards in [None, Some(2), Some(64)] {
        let dec = with_matching_override(MatchingEngine::Shard, shards, || {
            ChainDecomposition::compute_from_index_cancellable(
                &index,
                &mc_obs::CancelToken::never(),
            )
        })
        .unwrap();
        dec.validate(&points).unwrap();
        assert_eq!(dec.width(), 6);
    }
}
