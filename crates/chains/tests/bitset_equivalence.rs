//! Equivalence of the bitset matching engine with the reference paths.
//!
//! Three layers of agreement on random point sets (with duplicates,
//! signed zeros, and infinite sentinels):
//!
//! * `HopcroftKarpBitset` finds a matching of the same *size* as the
//!   `O(V·E)` reference `Kuhn` on the Lemma-6 split graph;
//! * `ChainDecomposition::compute_bitset` passes `validate()` and has
//!   the same width and antichain size as the adjacency-list path
//!   (`MatchingEngine::List`);
//! * the two engines agree on the paper's Figure-1 fixture.

use mc_chains::{ChainDecomposition, DominanceDag, MatchingEngine};
use mc_geom::{DominanceIndex, PointSet};
use mc_matching::{BipartiteGraph, BitsetGraph, HopcroftKarpBitset, Kuhn, MatchingAlgorithm};
use proptest::prelude::*;

/// Small palette so duplicates, ties, and `-0.0`/`0.0` pairs actually
/// occur (same scheme as mc-geom's index property tests).
const PALETTE: [f64; 8] = [
    f64::NEG_INFINITY,
    -0.0,
    0.0,
    -1.5,
    1.0,
    2.0,
    3.25,
    f64::INFINITY,
];

fn point_sets(max_n: usize, dim: usize) -> impl Strategy<Value = PointSet> {
    prop::collection::vec(prop::collection::vec(0usize..PALETTE.len(), dim), 0..max_n).prop_map(
        move |rows| {
            let mut points = PointSet::new(dim);
            for row in rows {
                let coords: Vec<f64> = row.into_iter().map(|i| PALETTE[i]).collect();
                points.push(&coords);
            }
            points
        },
    )
}

/// Both engines, checked structurally and against each other.
fn check_engines_agree(points: &PointSet) {
    let index = DominanceIndex::build(points);

    // Matching size parity with the O(V·E) reference on the split graph.
    let bitset_graph = BitsetGraph::from_index(&index);
    let (m, stats) = HopcroftKarpBitset.solve_with_stats(&bitset_graph);
    m.validate(&bitset_graph).unwrap();
    let dag = DominanceDag::from_index(&index);
    let mut list_graph = BipartiteGraph::new(points.len(), points.len());
    for u in 0..points.len() {
        for &v in dag.successors(u) {
            list_graph.add_edge(u, v as usize);
        }
    }
    let kuhn = Kuhn.solve(&list_graph);
    assert_eq!(m.size(), kuhn.size(), "matching size differs from Kuhn");
    assert_eq!(
        stats.greedy_matched + stats.augmented,
        m.size() as u64,
        "stats do not add up to the matching size"
    );

    // Decomposition-level parity: width and antichain size.
    let bitset_dec = ChainDecomposition::compute_with_engine(&index, MatchingEngine::Bitset);
    bitset_dec.validate(points).unwrap();
    let list_dec = ChainDecomposition::compute_with_engine(&index, MatchingEngine::List);
    list_dec.validate(points).unwrap();
    assert_eq!(bitset_dec.width(), list_dec.width(), "width differs");
    assert_eq!(
        bitset_dec.antichain().len(),
        list_dec.antichain().len(),
        "antichain size differs"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn engines_agree_d2(points in point_sets(28, 2)) {
        check_engines_agree(&points);
    }

    #[test]
    fn engines_agree_d3(points in point_sets(24, 3)) {
        check_engines_agree(&points);
    }

    #[test]
    fn engines_agree_d5(points in point_sets(18, 5)) {
        check_engines_agree(&points);
    }

    /// Heavy duplication: few distinct coordinates over many points, so
    /// nontrivial dup groups (owned masked rows) dominate the graph.
    #[test]
    fn engines_agree_with_heavy_duplicates(rows in prop::collection::vec(0usize..4, 0..30)) {
        let mut points = PointSet::new(2);
        for r in rows {
            let v = r as f64;
            points.push(&[v, 3.0 - v]);
        }
        check_engines_agree(&points);
    }
}

#[test]
fn engines_agree_on_figure1() {
    let points = mc_chains::test_support::figure1_like_points();
    check_engines_agree(&points);
    let index = DominanceIndex::build(&points);
    let dec = ChainDecomposition::compute_bitset(&index);
    assert_eq!(dec.width(), 6);
}
