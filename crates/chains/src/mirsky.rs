//! Mirsky's theorem: the dual decomposition.
//!
//! Where Dilworth partitions the poset into `w` *chains* (`w` = maximum
//! antichain), Mirsky partitions it into `ℓ` *antichains* where `ℓ` is the
//! length of the longest chain. The workspace uses this for workload
//! diagnostics (e.g. reporting the height of generated posets) and as an
//! independent cross-check on the dominance DAG.
//!
//! # Example
//!
//! ```
//! use mc_chains::longest_chain_len;
//! use mc_geom::PointSet;
//!
//! let points = PointSet::from_values_1d(&[3.0, 1.0, 2.0]);
//! assert_eq!(longest_chain_len(&points), 3); // a 1D set is one chain
//! ```

use crate::dag::DominanceDag;
use mc_geom::PointSet;

/// A partition of point indices into antichains by "height": level `k`
/// contains the points whose longest descending chain has length `k + 1`.
#[derive(Debug, Clone)]
pub struct AntichainPartition {
    levels: Vec<Vec<usize>>,
}

impl AntichainPartition {
    /// Computes the Mirsky partition in `O(V + E)` over the dominance DAG
    /// (after the `O(d·n²)` DAG construction).
    pub fn compute(points: &PointSet) -> Self {
        let dag = DominanceDag::build_parallel(points);
        Self::from_dag(&dag)
    }

    /// Computes the partition from a pre-built DAG.
    pub fn from_dag(dag: &DominanceDag) -> Self {
        let n = dag.num_nodes();
        // The DAG is transitively closed, so height[u] = 1 + max height of
        // predecessors. Process in topological order via in-degrees.
        let mut indeg = vec![0usize; n];
        for u in 0..n {
            for &v in dag.successors(u) {
                indeg[v as usize] += 1;
            }
        }
        let mut height = vec![0usize; n];
        let mut stack: Vec<usize> = (0..n).filter(|&u| indeg[u] == 0).collect();
        let mut processed = 0;
        let mut max_height = 0;
        while let Some(u) = stack.pop() {
            processed += 1;
            max_height = max_height.max(height[u]);
            for &v in dag.successors(u) {
                let v = v as usize;
                height[v] = height[v].max(height[u] + 1);
                indeg[v] -= 1;
                if indeg[v] == 0 {
                    stack.push(v);
                }
            }
        }
        assert_eq!(processed, n, "dominance DAG contains a cycle");
        let mut levels = vec![Vec::new(); if n == 0 { 0 } else { max_height + 1 }];
        for (u, &h) in height.iter().enumerate() {
            levels[h].push(u);
        }
        Self { levels }
    }

    /// The antichain levels, bottom (minimal points) first.
    pub fn levels(&self) -> &[Vec<usize>] {
        &self.levels
    }

    /// The length of the longest chain (the poset height).
    pub fn longest_chain_len(&self) -> usize {
        self.levels.len()
    }

    /// Validates that every level is an antichain and the levels partition
    /// the index set.
    pub fn validate(&self, points: &PointSet) -> Result<(), String> {
        let n = points.len();
        let mut seen = vec![false; n];
        for (k, level) in self.levels.iter().enumerate() {
            if level.is_empty() {
                return Err(format!("level {k} is empty"));
            }
            for (a, &i) in level.iter().enumerate() {
                if seen[i] {
                    return Err(format!("index {i} in two levels"));
                }
                seen[i] = true;
                for &j in &level[a + 1..] {
                    // Equal points are tie-broken comparable, so they may
                    // not share a level either.
                    if points.dominates(i, j) || points.dominates(j, i) {
                        return Err(format!("level {k}: {i} and {j} comparable"));
                    }
                }
            }
        }
        if seen.iter().any(|&s| !s) {
            return Err("levels do not cover every point".into());
        }
        Ok(())
    }
}

/// Length of the longest chain in `points` (the poset height).
pub fn longest_chain_len(points: &PointSet) -> usize {
    AntichainPartition::compute(points).longest_chain_len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_order_has_n_levels() {
        let points = PointSet::from_values_1d(&[4.0, 2.0, 3.0, 1.0]);
        let part = AntichainPartition::compute(&points);
        assert_eq!(part.longest_chain_len(), 4);
        part.validate(&points).unwrap();
    }

    #[test]
    fn antichain_has_one_level() {
        let points = PointSet::from_rows(2, &[vec![0.0, 2.0], vec![1.0, 1.0], vec![2.0, 0.0]]);
        let part = AntichainPartition::compute(&points);
        assert_eq!(part.longest_chain_len(), 1);
        part.validate(&points).unwrap();
    }

    #[test]
    fn grid_height_is_2k_minus_1() {
        let k = 4;
        let mut rows = Vec::new();
        for i in 0..k {
            for j in 0..k {
                rows.push(vec![i as f64, j as f64]);
            }
        }
        let points = PointSet::from_rows(2, &rows);
        let part = AntichainPartition::compute(&points);
        assert_eq!(part.longest_chain_len(), 2 * k - 1);
        part.validate(&points).unwrap();
    }

    #[test]
    fn empty_set_has_no_levels() {
        let points = PointSet::new(2);
        let part = AntichainPartition::compute(&points);
        assert_eq!(part.longest_chain_len(), 0);
        part.validate(&points).unwrap();
    }

    #[test]
    fn mirsky_times_dilworth_bounds_n() {
        // height * width >= n for any poset (pigeonhole on either
        // decomposition).
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..10 {
            let n = rng.gen_range(1..40);
            let mut rows = Vec::new();
            for _ in 0..n {
                rows.push(vec![rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0)]);
            }
            let points = PointSet::from_rows(2, &rows);
            let height = longest_chain_len(&points);
            let width = crate::decomposition::dominance_width(&points);
            assert!(height * width >= n, "{height} * {width} < {n}");
        }
    }
}
