//! Brute-force dominance width for tiny inputs, used to cross-validate the
//! matching-based computation in tests (exponential: `O(2^n · n²)`).

use mc_geom::PointSet;

/// Maximum antichain size by subset enumeration.
///
/// # Panics
///
/// Panics if `points.len() > 24` — this is a test oracle, not a production
/// path.
#[allow(clippy::needless_range_loop)]
pub fn brute_force_width(points: &PointSet) -> usize {
    let n = points.len();
    assert!(
        n <= 24,
        "brute_force_width is exponential; n = {n} too large"
    );
    // comparable[i] is a bitmask of the points comparable with i
    // (including duplicates, which are tie-broken comparable).
    let mut comparable = vec![0u32; n];
    for i in 0..n {
        for j in 0..n {
            if i != j && (points.dominates(i, j) || points.dominates(j, i)) {
                comparable[i] |= 1 << j;
            }
        }
    }
    let mut best = 0usize;
    for mask in 0u32..(1u32 << n) {
        let size = mask.count_ones() as usize;
        if size <= best {
            continue;
        }
        let mut ok = true;
        let mut m = mask;
        while m != 0 {
            let i = m.trailing_zeros() as usize;
            m &= m - 1;
            if comparable[i] & mask != 0 {
                ok = false;
                break;
            }
        }
        if ok {
            best = size;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomposition::dominance_width;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn agrees_with_matching_based_width() {
        let mut rng = StdRng::seed_from_u64(0xD11);
        for dim in [1usize, 2, 3] {
            for _ in 0..15 {
                let n = rng.gen_range(0..12);
                let mut rows = Vec::new();
                for _ in 0..n {
                    rows.push((0..dim).map(|_| rng.gen_range(0.0..4.0)).collect());
                }
                let points = if n == 0 {
                    PointSet::new(dim)
                } else {
                    PointSet::from_rows(dim, &rows)
                };
                assert_eq!(
                    brute_force_width(&points),
                    dominance_width(&points),
                    "disagreement on {points:?}"
                );
            }
        }
    }

    #[test]
    fn duplicates_count_once() {
        let points = PointSet::from_rows(2, &[vec![1.0, 1.0], vec![1.0, 1.0]]);
        assert_eq!(brute_force_width(&points), 1);
    }
}
