//! The dominance DAG of a point set.
//!
//! Following the proof of Lemma 6 (Appendix B of the paper): build an
//! acyclic directed graph with one vertex per point and an edge `u -> v`
//! whenever `v` strictly dominates `u` (so edges point "upward" and a
//! directed path is a chain in ascending dominance order). The construction
//! costs `O(d·n²)` time.
//!
//! Duplicate coordinate vectors — which the paper's set semantics excludes
//! but real data contains — are handled by breaking ties on index: equal
//! points are considered comparable (they can share a chain, and can never
//! both sit in an antichain), oriented from the smaller index to the
//! larger. This preserves both Dilworth duality and classifier semantics
//! (a classifier necessarily assigns equal points the same label).

use mc_geom::{Dominance, PointSet};

/// The dominance DAG over a [`PointSet`]. Because dominance is transitive,
/// this graph equals its own transitive closure, which is exactly what the
/// path-cover reduction of Lemma 6 requires.
#[derive(Debug, Clone)]
pub struct DominanceDag {
    n: usize,
    /// `succ[u]` lists all `v` with `v ≻ u` (or `v == u`, `u < v`).
    succ: Vec<Vec<u32>>,
    num_edges: usize,
}

impl DominanceDag {
    /// Builds the DAG in `O(d·n²)` time.
    #[allow(clippy::needless_range_loop)] // paired i/j index scans
    pub fn build(points: &PointSet) -> Self {
        let n = points.len();
        let mut succ = vec![Vec::new(); n];
        let mut num_edges = 0;
        for u in 0..n {
            for v in 0..n {
                if u == v {
                    continue;
                }
                let comparable_up = match points.compare(u, v) {
                    Dominance::DominatedBy => true,
                    Dominance::Equal => u < v,
                    _ => false,
                };
                if comparable_up {
                    succ[u].push(v as u32);
                    num_edges += 1;
                }
            }
        }
        Self { n, succ, num_edges }
    }

    /// Builds the DAG using all available cores: the `O(d·n²)` pair scan
    /// is embarrassingly parallel over source vertices. Falls back to the
    /// sequential path for small inputs where thread startup dominates.
    pub fn build_parallel(points: &PointSet) -> Self {
        let n = points.len();
        let threads = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        if n < 2_000 || threads <= 1 {
            return Self::build(points);
        }
        let chunk = n.div_ceil(threads);
        let mut succ: Vec<Vec<u32>> = Vec::with_capacity(n);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let lo = t * chunk;
                    let hi = ((t + 1) * chunk).min(n);
                    scope.spawn(move || {
                        let mut local: Vec<Vec<u32>> = Vec::with_capacity(hi.saturating_sub(lo));
                        for u in lo..hi {
                            let mut row = Vec::new();
                            for v in 0..n {
                                if u == v {
                                    continue;
                                }
                                let comparable_up = match points.compare(u, v) {
                                    Dominance::DominatedBy => true,
                                    Dominance::Equal => u < v,
                                    _ => false,
                                };
                                if comparable_up {
                                    row.push(v as u32);
                                }
                            }
                            local.push(row);
                        }
                        local
                    })
                })
                .collect();
            for handle in handles {
                succ.extend(handle.join().expect("DAG build worker panicked"));
            }
        });
        let num_edges = succ.iter().map(Vec::len).sum();
        Self { n, succ, num_edges }
    }

    /// Number of vertices (= points).
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Vertices strictly above `u` in the (tie-broken) dominance order.
    pub fn successors(&self, u: usize) -> &[u32] {
        &self.succ[u]
    }

    /// `true` iff there is an edge `u -> v`.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.succ[u].contains(&(v as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_in_1d_is_total() {
        let points = PointSet::from_values_1d(&[3.0, 1.0, 2.0]);
        let dag = DominanceDag::build(&points);
        // 1 < 2 < 3: edges 1->2, 1->0, 2->0 (indices: 0 is 3.0, 1 is 1.0, 2 is 2.0)
        assert!(dag.has_edge(1, 2));
        assert!(dag.has_edge(1, 0));
        assert!(dag.has_edge(2, 0));
        assert_eq!(dag.num_edges(), 3);
    }

    #[test]
    fn antichain_has_no_edges() {
        let points = PointSet::from_rows(2, &[vec![0.0, 2.0], vec![1.0, 1.0], vec![2.0, 0.0]]);
        let dag = DominanceDag::build(&points);
        assert_eq!(dag.num_edges(), 0);
    }

    #[test]
    fn duplicates_are_comparable_once() {
        let points = PointSet::from_rows(2, &[vec![1.0, 1.0], vec![1.0, 1.0]]);
        let dag = DominanceDag::build(&points);
        assert!(dag.has_edge(0, 1));
        assert!(!dag.has_edge(1, 0));
        assert_eq!(dag.num_edges(), 1);
    }

    #[test]
    fn transitively_closed() {
        let points = PointSet::from_values_1d(&[1.0, 2.0, 3.0]);
        let dag = DominanceDag::build(&points);
        assert!(dag.has_edge(0, 2), "direct edge for transitive pair");
    }

    #[test]
    fn empty_set() {
        let points = PointSet::new(2);
        let dag = DominanceDag::build(&points);
        assert_eq!(dag.num_nodes(), 0);
        assert_eq!(dag.num_edges(), 0);
    }
}

#[cfg(test)]
mod parallel_tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn parallel_matches_sequential() {
        let mut rng = StdRng::seed_from_u64(0x9AA);
        for &n in &[0usize, 1, 100, 2500] {
            let rows: Vec<Vec<f64>> = (0..n)
                .map(|_| {
                    vec![
                        rng.gen_range(0.0f64..50.0).round(),
                        rng.gen_range(0.0f64..50.0).round(),
                        rng.gen_range(0.0f64..50.0).round(),
                    ]
                })
                .collect();
            let points = if n == 0 {
                PointSet::new(3)
            } else {
                PointSet::from_rows(3, &rows)
            };
            let seq = DominanceDag::build(&points);
            let par = DominanceDag::build_parallel(&points);
            assert_eq!(seq.num_edges(), par.num_edges(), "n = {n}");
            for u in 0..n {
                assert_eq!(seq.successors(u), par.successors(u), "n = {n}, u = {u}");
            }
        }
    }
}
