//! The dominance DAG of a point set.
//!
//! Following the proof of Lemma 6 (Appendix B of the paper): build an
//! acyclic directed graph with one vertex per point and an edge `u -> v`
//! whenever `v` strictly dominates `u` (so edges point "upward" and a
//! directed path is a chain in ascending dominance order). The naive
//! construction costs `O(d·n²)` pairwise float compares; the default
//! build instead reads the edges off a shared [`DominanceIndex`] (rank
//! compression + bitset rows — see `mc_geom::index`), which fills in
//! `O(n²/64)` word operations for `d ≤ 2` and with a parallel blocked
//! compare kernel otherwise.
//!
//! Duplicate coordinate vectors — which the paper's set semantics excludes
//! but real data contains — are handled by breaking ties on index: equal
//! points are considered comparable (they can share a chain, and can never
//! both sit in an antichain), oriented from the smaller index to the
//! larger. This preserves both Dilworth duality and classifier semantics
//! (a classifier necessarily assigns equal points the same label).

use mc_geom::{parallel_chunks, Dominance, DominanceIndex, PointSet};

/// The dominance DAG over a [`PointSet`]. Because dominance is transitive,
/// this graph equals its own transitive closure, which is exactly what the
/// path-cover reduction of Lemma 6 requires.
#[derive(Debug, Clone)]
pub struct DominanceDag {
    n: usize,
    /// `succ[u]` lists all `v` with `v ≻ u` (or `v == u`, `u < v`).
    succ: Vec<Vec<u32>>,
    num_edges: usize,
}

impl DominanceDag {
    /// Builds the DAG via a freshly built [`DominanceIndex`]. Callers
    /// that already hold an index should use [`DominanceDag::from_index`]
    /// to avoid rebuilding it.
    pub fn build(points: &PointSet) -> Self {
        Self::from_index(&DominanceIndex::build(points))
    }

    /// Alias of [`DominanceDag::build`], kept for callers of the old
    /// dual sequential/parallel API: the index build parallelizes
    /// internally (see `mc_geom::parallel` for the `MC_PAR_THRESHOLD` /
    /// `MC_THREADS` tunables).
    pub fn build_parallel(points: &PointSet) -> Self {
        Self::build(points)
    }

    /// Reads the DAG off a prebuilt index: successors of `u` are the set
    /// bits of `u`'s dominator row, minus `u` itself, with equal points
    /// oriented small-index → large-index. Runs in parallel row chunks.
    pub fn from_index(index: &DominanceIndex) -> Self {
        let _span = mc_obs::span("dag_build");
        let n = index.len();
        let chunks = parallel_chunks(n, |range| {
            let mut local: Vec<Vec<u32>> = Vec::with_capacity(range.len());
            for u in range {
                local.push(index.strict_successors(u).map(|v| v as u32).collect());
            }
            local
        });
        let mut succ: Vec<Vec<u32>> = Vec::with_capacity(n);
        for chunk in chunks {
            succ.extend(chunk);
        }
        let num_edges = succ.iter().map(Vec::len).sum();
        mc_obs::counter_add("chains.dag_edges", num_edges as u64);
        Self { n, succ, num_edges }
    }

    /// The pre-index `O(d·n²)` pairwise scan, kept as the reference
    /// implementation for tests and benchmarks.
    #[allow(clippy::needless_range_loop)] // paired i/j index scans
    pub fn build_naive(points: &PointSet) -> Self {
        let n = points.len();
        let mut succ = vec![Vec::new(); n];
        let mut num_edges = 0;
        for u in 0..n {
            for v in 0..n {
                if u == v {
                    continue;
                }
                let comparable_up = match points.compare(u, v) {
                    Dominance::DominatedBy => true,
                    Dominance::Equal => u < v,
                    _ => false,
                };
                if comparable_up {
                    succ[u].push(v as u32);
                    num_edges += 1;
                }
            }
        }
        Self { n, succ, num_edges }
    }

    /// Number of vertices (= points).
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Vertices strictly above `u` in the (tie-broken) dominance order.
    pub fn successors(&self, u: usize) -> &[u32] {
        &self.succ[u]
    }

    /// `true` iff there is an edge `u -> v`.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.succ[u].contains(&(v as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_in_1d_is_total() {
        let points = PointSet::from_values_1d(&[3.0, 1.0, 2.0]);
        let dag = DominanceDag::build(&points);
        // 1 < 2 < 3: edges 1->2, 1->0, 2->0 (indices: 0 is 3.0, 1 is 1.0, 2 is 2.0)
        assert!(dag.has_edge(1, 2));
        assert!(dag.has_edge(1, 0));
        assert!(dag.has_edge(2, 0));
        assert_eq!(dag.num_edges(), 3);
    }

    #[test]
    fn antichain_has_no_edges() {
        let points = PointSet::from_rows(2, &[vec![0.0, 2.0], vec![1.0, 1.0], vec![2.0, 0.0]]);
        let dag = DominanceDag::build(&points);
        assert_eq!(dag.num_edges(), 0);
    }

    #[test]
    fn duplicates_are_comparable_once() {
        let points = PointSet::from_rows(2, &[vec![1.0, 1.0], vec![1.0, 1.0]]);
        let dag = DominanceDag::build(&points);
        assert!(dag.has_edge(0, 1));
        assert!(!dag.has_edge(1, 0));
        assert_eq!(dag.num_edges(), 1);
    }

    #[test]
    fn transitively_closed() {
        let points = PointSet::from_values_1d(&[1.0, 2.0, 3.0]);
        let dag = DominanceDag::build(&points);
        assert!(dag.has_edge(0, 2), "direct edge for transitive pair");
    }

    #[test]
    fn empty_set() {
        let points = PointSet::new(2);
        let dag = DominanceDag::build(&points);
        assert_eq!(dag.num_nodes(), 0);
        assert_eq!(dag.num_edges(), 0);
    }
}

#[cfg(test)]
mod index_equivalence_tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// The index-backed build must reproduce the naive scan's edge set
    /// exactly, across dimensions and both sides of the parallel cutoff.
    #[test]
    fn indexed_matches_naive() {
        let mut rng = StdRng::seed_from_u64(0x9AA);
        for &(n, dim) in &[
            (0usize, 3usize),
            (1, 3),
            (100, 1),
            (150, 2),
            (400, 3),
            (2500, 3),
        ] {
            let rows: Vec<Vec<f64>> = (0..n)
                .map(|_| {
                    (0..dim)
                        .map(|_| rng.gen_range(0.0f64..50.0).round())
                        .collect()
                })
                .collect();
            let points = if n == 0 {
                PointSet::new(dim)
            } else {
                PointSet::from_rows(dim, &rows)
            };
            let naive = DominanceDag::build_naive(&points);
            let indexed = DominanceDag::build(&points);
            assert_eq!(naive.num_edges(), indexed.num_edges(), "n = {n}, d = {dim}");
            for u in 0..n {
                assert_eq!(
                    naive.successors(u),
                    indexed.successors(u),
                    "n = {n}, d = {dim}, u = {u}"
                );
            }
        }
    }
}
