//! Banded shard decomposition of the Lemma-6 matching
//! (`MC_MATCHING=shard`).
//!
//! The sequential engines solve one Hopcroft–Karp instance over all `n`
//! label-1 points: every BFS/DFS phase sweeps rows `n` bits wide. This
//! engine cuts the instance into `K` contiguous rank bands along the
//! most-selective dimension ([`mc_geom::band_partition`]) and exploits
//! the band invariant — *every point of a later band is strictly above
//! every point of an earlier band on the cut dimension* — four times
//! over:
//!
//! 1. **Band solves.** Each band of `m ≈ n/K` points is a self-contained
//!    sub-poset, matched independently with the matrix-free bitset
//!    engine over a gathered sub-oracle ([`RankOracle::from_subset`]).
//!    Band rows are `m` bits wide instead of `n`, so the per-phase word
//!    work drops from `O(n²/64)` to `O(K · (n/K)²/64) = O(n²/(64K))` —
//!    a `K×` reduction that pays even on a single core. Bands are
//!    dealt to worker threads off an atomic queue; each worker pins
//!    [`mc_geom::with_sequential`] so the oracle kernels do not
//!    nest-spawn.
//! 2. **Merge.** No split-graph edge points from a later band back into
//!    an earlier one, so the union of per-band matchings is a valid
//!    global matching — copied into global arrays with no conflict
//!    checks. (Bands hold ascending point indices, so per-band
//!    duplicate tie-breaks coincide with global ones.)
//! 3. **Stitch.** The union's deficit versus the global maximum is only
//!    at the seams: chains that *could* continue across a boundary.
//!    A greedy pass walks the bands in ascending rank order, keeping
//!    the pool of open chain tails; each band's chain heads grab the
//!    first dominated tail (`head ⪰ tail`, with the index tie-break on
//!    equal points). Each stitch extends the matching by one edge.
//! 4. **Repair.** Greedy stitching is not optimal, so the stitched
//!    matching warm-starts one global Hopcroft–Karp
//!    ([`HopcroftKarpBitset::resume_with_stats_cancellable`]): phases
//!    run until no augmenting path remains, which *guarantees* a
//!    maximum matching — the width is bit-identical to the sequential
//!    engines (the chains themselves may differ).
//! 5. **Row caching.** Per-band maximum matchings are locally rigid:
//!    undoing them across a seam takes *long* alternating paths, so the
//!    repair runs as many full-width phases as a cold solve — and each
//!    phase recomputes every row from rank columns. The engine
//!    therefore materializes rows once
//!    ([`OracleGraph::materialize_cancellable`]) and lets the phases
//!    (and the König sweep) scan at word speed instead. Band
//!    sub-matrices are `(n/K)²` bits — `K²×` smaller than the
//!    monolithic matrix PR 7 evicted — so bands stay materialized deep
//!    past the matrix wall; the full-width repair cache is gated on
//!    `MC_MATRIX_BUDGET_BYTES` (default 256 MiB here) and falls back
//!    to matrix-free on-demand rows above it. Cached rows are
//!    bit-identical to on-demand ones, so nothing downstream changes.
//!
//! The König antichain certificate is still computed from scratch and
//! cross-checked against the chain count; on a mismatch (which would
//! mean a bug, not an input property) the engine warns once, bumps
//! `matching.shard.fallbacks`, and recomputes with the sequential
//! bitset engine — callers never observe an uncertified width.
//!
//! Observability: `matching.shard.{bands,stitched,repair_rounds,
//! repair_augmented,fallbacks}` counters and the `matching.shard`
//! progress phase (`progress.matching.shard.{units,frac}` gauges, one
//! unit per banded point).

use crate::decomposition::ChainDecomposition;
use mc_geom::{band_partition, matrix_bytes, RankOracle};
use mc_matching::{
    BitsetGraph, HkWorkspace, HopcroftKarpBitset, Matching, MatchingStats, OracleGraph,
};
use mc_obs::{CancelToken, Cancelled};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Default ceiling on materialized split-graph rows (bytes) when
/// `MC_MATRIX_BUDGET_BYTES` is unset. The sharded engine runs precisely
/// in the regime the monolithic dominator matrix was evicted from, so
/// unlike the index builders (unset = unlimited) its row cache defaults
/// conservative; setting the env knob overrides both in one place.
const DEFAULT_CACHE_BYTES: u64 = 256 << 20;

/// The byte budget for materialized rows: `MC_MATRIX_BUDGET_BYTES` if
/// configured, else [`DEFAULT_CACHE_BYTES`].
fn cache_budget_bytes() -> u64 {
    mc_geom::matrix_budget_bytes().unwrap_or(DEFAULT_CACHE_BYTES)
}

/// One band's solved matching, in band-local vertex numbering.
struct BandSolve {
    band: usize,
    matching: Matching,
}

/// Entry point behind [`ChainDecomposition::compute_sharded_cancellable`].
pub(crate) fn compute_sharded_cancellable(
    oracle: &RankOracle,
    shards: usize,
    token: &CancelToken,
) -> Result<ChainDecomposition, Cancelled> {
    let n = oracle.len();
    if n == 0 {
        return Ok(ChainDecomposition::finish(Vec::new(), Vec::new()));
    }
    if shards <= 1 {
        return ChainDecomposition::oracle_bitset_cancellable(oracle, token);
    }
    let part = band_partition(oracle, shards);
    if part.bands.len() <= 1 {
        // Rank classes too coarse to cut: nothing to shard.
        return ChainDecomposition::oracle_bitset_cancellable(oracle, token);
    }
    let _span = mc_obs::span("path_cover_sharded");
    mc_obs::counter_add("matching.shard.bands", part.bands.len() as u64);

    let solves = {
        let _s = mc_obs::span("shard.band_solves");
        solve_bands(oracle, &part.bands, token)?
    };
    let (mut left_match, mut right_match) = merge_bands(n, &part.bands, &solves);
    let stitched = {
        let _s = mc_obs::span("shard.stitch");
        stitch(oracle, &part.bands, &mut left_match, &mut right_match)
    };
    mc_obs::counter_add("matching.shard.stitched", stitched);
    token.poll()?;

    // Warm-started global repair: runs to a true maximum matching, so
    // the width below is exactly the sequential engines' width. The
    // repair's phases — and the König certificate sweep after them —
    // revisit every row once per BFS/DFS pass, so when the full split
    // graph fits the cache budget its rows are materialized once:
    // a cached scan is a word load where an on-demand row costs a
    // d-dimension rank-compare pass. Rows are bit-identical either
    // way, so the matching (and the certificate) cannot differ.
    let og = OracleGraph::new(oracle);
    let cached: Option<BitsetGraph<'static>> = if matrix_bytes(n) <= cache_budget_bytes() {
        let _s = mc_obs::span("shard.materialize");
        mc_obs::counter_add("matching.shard.rows_cached", n as u64);
        Some(og.materialize_cancellable(token)?)
    } else {
        None
    };
    let initial = Matching {
        left_match,
        right_match,
    };
    let mut ws = HkWorkspace::new();
    let (matching, stats): (Matching, MatchingStats) = {
        let _s = mc_obs::span("shard.repair");
        match &cached {
            Some(g) => {
                HopcroftKarpBitset.resume_with_stats_cancellable(g, initial, &mut ws, token)?
            }
            None => {
                HopcroftKarpBitset.resume_with_stats_cancellable(&og, initial, &mut ws, token)?
            }
        }
    };
    mc_obs::counter_add("matching.shard.repair_rounds", stats.rounds);
    mc_obs::counter_add("matching.shard.repair_augmented", stats.augmented);
    token.poll()?;

    let chains = ChainDecomposition::chains_from_matching(n, &matching);
    let antichain = match &cached {
        Some(g) => ChainDecomposition::antichain_from_cover(n, g, &matching),
        None => ChainDecomposition::antichain_from_cover(n, &og, &matching),
    };
    if antichain.len() != chains.len() {
        // König duality must hold for a maximum matching; a mismatch
        // means the stitched matching violated an engine invariant.
        // Fail safe: certify via the sequential path.
        mc_obs::warn_once(
            "mc_shard_certificate",
            "sharded chain decomposition failed its antichain certificate; \
             recomputing with the sequential bitset engine",
        );
        mc_obs::counter_add("matching.shard.fallbacks", 1);
        return ChainDecomposition::oracle_bitset_cancellable(oracle, token);
    }
    Ok(ChainDecomposition::finish(chains, antichain))
}

/// Solves every band's sub-instance, dealing bands to at most
/// `mc_geom::max_threads()` workers off an atomic queue. Returns the
/// band-local matchings (order unspecified; tagged with band ids).
fn solve_bands(
    oracle: &RankOracle,
    bands: &[Vec<usize>],
    token: &CancelToken,
) -> Result<Vec<BandSolve>, Cancelled> {
    let n = oracle.len();
    let workers = bands.len().min(mc_geom::max_threads());
    // A band's sub-matrix is `(n/K)²` bits — `K²×` smaller than the
    // monolithic matrix — so bands can run at materialized word speed
    // deep into the regime where the full matrix is out of budget.
    // Each worker holds at most one band's rows at a time, so the gate
    // charges the budget `workers` bands at once.
    let largest = bands.iter().map(Vec::len).max().unwrap_or(0);
    let materialize_bands =
        matrix_bytes(largest).saturating_mul(workers as u64) <= cache_budget_bytes();
    let next = AtomicUsize::new(0);
    let worker = |ws: &mut HkWorkspace| -> Result<Vec<BandSolve>, Cancelled> {
        // Pin the oracle kernels to this thread: the bands *are* the
        // parallelism, nest-spawning would oversubscribe the pool.
        mc_geom::with_sequential(|| {
            let mut out = Vec::new();
            let mut cp = mc_obs::Checkpoint::with_progress(token, "matching.shard", n as u64);
            loop {
                let band = next.fetch_add(1, Ordering::Relaxed);
                let Some(indices) = bands.get(band) else {
                    return Ok(out);
                };
                let sub = oracle.from_subset(indices);
                ws.invalidate_degrees();
                let (matching, _) = if materialize_bands {
                    let g = OracleGraph::new(&sub).materialize_cancellable(token)?;
                    HopcroftKarpBitset.solve_in_workspace_cancellable(&g, ws, token)?
                } else {
                    let g = OracleGraph::new(&sub);
                    HopcroftKarpBitset.solve_in_workspace_cancellable(&g, ws, token)?
                };
                out.push(BandSolve { band, matching });
                cp.tick(indices.len() as u64)?;
            }
        })
    };
    if workers <= 1 {
        return worker(&mut HkWorkspace::new());
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| scope.spawn(|| worker(&mut HkWorkspace::new())))
            .collect();
        let mut solves = Vec::with_capacity(bands.len());
        let mut cancelled = None;
        for h in handles {
            match h.join().expect("shard worker panicked") {
                Ok(part) => solves.extend(part),
                Err(c) => cancelled = Some(c),
            }
        }
        match cancelled {
            Some(c) => Err(c),
            None => Ok(solves),
        }
    })
}

/// Lifts the band-local matchings into one global matching. Valid with
/// no conflict checks: bands partition the vertices and the band
/// invariant rules out cross-band edges in the per-band solves.
fn merge_bands(
    n: usize,
    bands: &[Vec<usize>],
    solves: &[BandSolve],
) -> (Vec<Option<u32>>, Vec<Option<u32>>) {
    let mut left_match = vec![None; n];
    let mut right_match = vec![None; n];
    for s in solves {
        let indices = &bands[s.band];
        for (l, &m) in s.matching.left_match.iter().enumerate() {
            if let Some(r) = m {
                let (gl, gr) = (indices[l], indices[r as usize]);
                left_match[gl] = Some(gr as u32);
                right_match[gr] = Some(gl as u32);
            }
        }
    }
    (left_match, right_match)
}

/// Greedy cross-boundary stitch: walks the bands in ascending rank
/// order keeping the pool of open chain tails (left copy unmatched);
/// each band's chain heads (right copy unmatched) grab the first
/// dominated tail. Every hit adds one matching edge — the resulting
/// matching stays valid (the dominance check *is* the split-graph edge
/// predicate) and strictly closer to maximum. Returns the stitch count.
fn stitch(
    oracle: &RankOracle,
    bands: &[Vec<usize>],
    left_match: &mut [Option<u32>],
    right_match: &mut [Option<u32>],
) -> u64 {
    let mut open_tails: Vec<usize> = Vec::new();
    let mut stitched = 0u64;
    for indices in bands {
        for &h in indices {
            if right_match[h].is_some() {
                continue; // not a chain head
            }
            let hit = open_tails
                .iter()
                .position(|&t| oracle.dominates(h, t) && (!oracle.equal_points(h, t) || h > t));
            if let Some(pos) = hit {
                let t = open_tails.swap_remove(pos);
                left_match[t] = Some(h as u32);
                right_match[h] = Some(t as u32);
                stitched += 1;
            }
        }
        // This band's tails become stitch candidates for later bands
        // only — a tail can never chain to a head of its own band
        // (the band solve already saturated in-band edges greedily).
        open_tails.extend(indices.iter().copied().filter(|&i| left_match[i].is_none()));
    }
    stitched
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_geom::PointSet;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_points(n: usize, dim: usize, grid: f64, rng: &mut StdRng) -> PointSet {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..dim).map(|_| rng.gen_range(0.0..grid).round()).collect())
            .collect();
        if n == 0 {
            PointSet::new(dim)
        } else {
            PointSet::from_rows(dim, &rows)
        }
    }

    #[test]
    fn sharded_width_matches_bitset_on_random_sets() {
        let mut rng = StdRng::seed_from_u64(0x54A2);
        for dim in [1usize, 2, 3, 4] {
            for &shards in &[2usize, 3, 8] {
                let n = rng.gen_range(1..160);
                let points = random_points(n, dim, 4.0, &mut rng);
                let oracle = RankOracle::build(&points);
                let seq = ChainDecomposition::compute_from_oracle(&oracle);
                let sh = ChainDecomposition::compute_sharded(&oracle, shards);
                assert_eq!(sh.width(), seq.width(), "dim {dim} shards {shards} n {n}");
                sh.validate(&points).unwrap();
            }
        }
    }

    #[test]
    fn stitched_matching_is_always_valid_before_repair() {
        // The repair pass asserts validity implicitly; check explicitly
        // that merge + stitch alone produce a valid (partial) matching.
        let mut rng = StdRng::seed_from_u64(0x571C);
        for _ in 0..20 {
            let n = rng.gen_range(2..120);
            let points = random_points(n, 2, 3.0, &mut rng);
            let oracle = RankOracle::build(&points);
            let part = band_partition(&oracle, 4);
            let solves = solve_bands(&oracle, &part.bands, &CancelToken::never()).unwrap();
            let (mut lm, mut rm) = merge_bands(n, &part.bands, &solves);
            stitch(&oracle, &part.bands, &mut lm, &mut rm);
            let m = Matching {
                left_match: lm,
                right_match: rm,
            };
            m.validate(&OracleGraph::new(&oracle)).unwrap();
        }
    }

    #[test]
    fn uniform_duplicates_collapse_to_single_chain() {
        // All-equal points: one dup class, one band, one chain; the
        // sharded entry must fall back cleanly and stay correct.
        let rows: Vec<Vec<f64>> = (0..50).map(|_| vec![1.0, 2.0]).collect();
        let points = PointSet::from_rows(2, &rows);
        let oracle = RankOracle::build(&points);
        let dec = ChainDecomposition::compute_sharded(&oracle, 8);
        assert_eq!(dec.width(), 1);
        dec.validate(&points).unwrap();
    }

    #[test]
    fn cancellation_propagates_from_band_workers() {
        let mut rng = StdRng::seed_from_u64(9);
        let points = random_points(400, 2, 40.0, &mut rng);
        let oracle = RankOracle::build(&points);
        let token = CancelToken::new();
        token.cancel();
        assert!(compute_sharded_cancellable(&oracle, 4, &token).is_err());
    }
}
