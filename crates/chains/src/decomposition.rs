//! Minimum chain decomposition via Dilworth's theorem (Lemma 6).
//!
//! Dilworth \[10\]: the minimum number of chains that partition a poset
//! equals the maximum antichain size (the *dominance width* `w`). The
//! constructive route, used by the paper's Lemma 6:
//!
//! 1. build the dominance DAG (it is its own transitive closure);
//! 2. a partition into `k` chains = a cover of the DAG by `k`
//!    vertex-disjoint paths;
//! 3. minimum path cover = `n − (maximum matching of the split bipartite
//!    graph)`, solved with Hopcroft–Karp in `O(E·sqrt(V))`;
//! 4. König's minimum vertex cover of the same graph yields a maximum
//!    antichain *certificate* of the same size.
//!
//! Total: `O(d·n² + n^2.5)`, matching Lemma 6.
//!
//! Two matching engines implement step 3. The default ([`MatchingEngine::Bitset`])
//! views the split graph directly as the dominance index's bitset rows —
//! no `DominanceDag` adjacency lists (Θ(n²) edges) are ever materialized —
//! and runs `mc_matching::HopcroftKarpBitset`'s word-parallel phases. The
//! adjacency-list reference path survives behind `MC_MATCHING=list`.

use crate::dag::DominanceDag;
use mc_geom::{DominanceIndex, GeomError, PointSet, RankOracle};
use mc_matching::{
    minimum_vertex_cover, BipartiteAdjacency, BipartiteGraph, BitsetGraph, HopcroftKarp,
    HopcroftKarpBitset, Matching, MatchingAlgorithm, OracleGraph,
};

/// Which Hopcroft–Karp engine drives the Lemma-6 path cover.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum MatchingEngine {
    /// Word-parallel BFS/DFS straight over the dominance index's bitset
    /// rows; never materializes adjacency lists. The default.
    #[default]
    Bitset,
    /// Pointer-walking Hopcroft–Karp over explicit [`DominanceDag`]
    /// adjacency lists; kept as the tested reference path.
    List,
    /// Banded shard decomposition: the points are cut into contiguous
    /// rank bands, matched per band on worker threads, stitched across
    /// boundaries, and repaired to a global maximum matching (see
    /// [`crate::shard`]). Width-identical to the bitset engine; the
    /// chains themselves may differ. Shard count from `MC_SHARDS`
    /// (default: `max(worker threads, 2)`).
    Shard,
}

thread_local! {
    /// Per-thread engine override (see [`with_matching_override`]):
    /// `(engine, shard count)`, with `None` deferring the count to
    /// `MC_SHARDS`.
    static MATCHING_OVERRIDE: std::cell::Cell<Option<(MatchingEngine, Option<usize>)>> =
        const { std::cell::Cell::new(None) };
}

/// Runs `f` with the Lemma-6 matching engine (and optionally the shard
/// count) pinned for the *current thread*, overriding `MC_MATCHING` /
/// `MC_SHARDS`. This is how callers that race engines in one process —
/// the portfolio's `shard-hk` roster entry, the CLI's `--shards` flag —
/// select an engine without mutating process-global environment state
/// under concurrent readers. Nested overrides restore the outer one on
/// exit (even on panic).
pub fn with_matching_override<T>(
    engine: MatchingEngine,
    shards: Option<usize>,
    f: impl FnOnce() -> T,
) -> T {
    struct Restore(Option<(MatchingEngine, Option<usize>)>);
    impl Drop for Restore {
        fn drop(&mut self) {
            MATCHING_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(MATCHING_OVERRIDE.with(|c| c.replace(Some((engine, shards)))));
    f()
}

impl MatchingEngine {
    /// Reads the `MC_MATCHING` env toggle: `bitset` (the default),
    /// `list`, or `shard`. A thread-local [`with_matching_override`]
    /// wins over the environment. Unrecognised values warn once and
    /// fall back to the default.
    pub fn from_env() -> Self {
        if let Some((engine, _)) = MATCHING_OVERRIDE.with(|c| c.get()) {
            return engine;
        }
        match std::env::var("MC_MATCHING") {
            Ok(v) if v.eq_ignore_ascii_case("list") => Self::List,
            Ok(v) if v.eq_ignore_ascii_case("shard") => Self::Shard,
            Ok(v) if v.eq_ignore_ascii_case("bitset") || v.is_empty() => Self::Bitset,
            Ok(_) => {
                mc_obs::warn_once(
                    "mc_matching_env",
                    "unrecognised MC_MATCHING value (expected 'bitset', 'list' or 'shard'); \
                     using the bitset engine",
                );
                Self::Bitset
            }
            Err(_) => Self::Bitset,
        }
    }
}

/// Default shard count when neither an override nor `MC_SHARDS` sets
/// one: every worker thread gets a band, and even a single-core host
/// gets two — the band-local matchings run on rows `K×` narrower than
/// the global graph, so the decomposition usually wins on total work,
/// not just on parallelism.
fn default_shards() -> usize {
    mc_geom::max_threads().max(2)
}

/// Resolves the shard count for a [`MatchingEngine::Shard`] solve:
/// thread-local override first, then `MC_SHARDS`, then
/// [`default_shards`]. Returns `None` — after a one-shot warning — when
/// `MC_SHARDS` is set but malformed; callers fall back to the bitset
/// engine, matching the env-parsing discipline of `mc_geom::parallel`.
pub(crate) fn effective_shards() -> Option<usize> {
    if let Some((_, Some(k))) = MATCHING_OVERRIDE.with(|c| c.get()) {
        return Some(k);
    }
    match std::env::var_os("MC_SHARDS") {
        None => Some(default_shards()),
        Some(raw) => match raw
            .into_string()
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
        {
            Some(v) if v >= 1 => Some(v),
            _ => {
                mc_obs::warn_once(
                    "mc_shards_env",
                    "MC_SHARDS must be a positive integer; using the bitset engine",
                );
                None
            }
        },
    }
}

/// A partition of point indices into chains, each sorted in ascending
/// dominance order, together with a maximum-antichain certificate.
#[derive(Debug, Clone)]
pub struct ChainDecomposition {
    /// The chains; `chains[c][i]` is a point index, and
    /// `chains[c][i+1]` dominates `chains[c][i]`.
    chains: Vec<Vec<usize>>,
    /// Point indices forming a maximum antichain (one certificate).
    antichain: Vec<usize>,
}

impl ChainDecomposition {
    /// Computes a minimum chain decomposition of `points`.
    ///
    /// Builds one [`DominanceIndex`] and hands it to
    /// [`compute_from_index`](Self::compute_from_index); callers that
    /// already hold an index should call that directly to avoid a second
    /// dominance pass.
    pub fn compute(points: &PointSet) -> Self {
        Self::compute_from_index(&DominanceIndex::build(points))
    }

    /// Budget-guarded twin of [`compute`](Self::compute): refuses with a
    /// typed [`GeomError::MatrixBudget`] — instead of attempting an
    /// allocation that may OOM the process — when the dominator matrix
    /// would exceed the `MC_MATRIX_BUDGET_BYTES` budget. Callers that
    /// must stay matrix-free regardless of budget should build a
    /// [`RankOracle`] and use [`compute_from_oracle`](Self::compute_from_oracle).
    pub fn try_compute(points: &PointSet) -> Result<Self, GeomError> {
        mc_geom::check_matrix_budget(points.len())?;
        Ok(Self::compute_from_index(&DominanceIndex::build(points)))
    }

    /// Matrix-free decomposition over a [`RankOracle`]: the Lemma-6
    /// split graph's rows are computed on demand from rank columns
    /// (`O(d·n)` resident instead of `Θ(n²/64)`), and the oracle rows
    /// are bit-identical to the dominator-matrix rows, so the chains,
    /// width, and antichain certificate match the matrix path exactly.
    pub fn compute_from_oracle(oracle: &RankOracle) -> Self {
        Self::compute_from_oracle_cancellable(oracle, &mc_obs::CancelToken::never())
            .expect("a never-token cannot cancel")
    }

    /// Cancellable twin of [`compute_from_oracle`](Self::compute_from_oracle).
    ///
    /// Dispatches on the `MC_MATCHING` toggle (or a thread-local
    /// [`with_matching_override`]): `shard` routes to
    /// [`compute_sharded_cancellable`](Self::compute_sharded_cancellable);
    /// everything else runs the word-parallel bitset engine. The
    /// `MC_MATCHING=list` reference path needs materialized adjacency
    /// lists, which is exactly what this entry point exists to avoid,
    /// so that toggle warns once and is ignored here (the matching is
    /// identical).
    pub fn compute_from_oracle_cancellable(
        oracle: &RankOracle,
        token: &mc_obs::CancelToken,
    ) -> Result<Self, mc_obs::Cancelled> {
        match MatchingEngine::from_env() {
            MatchingEngine::Shard => {
                if let Some(k) = effective_shards() {
                    return Self::compute_sharded_cancellable(oracle, k, token);
                }
                // Malformed MC_SHARDS: already warned, bitset below.
            }
            MatchingEngine::List => {
                mc_obs::warn_once(
                    "mc_matching_oracle_list",
                    "MC_MATCHING=list has no matrix-free variant; the rank-oracle \
                     path uses the bitset engine (the matching is identical)",
                );
            }
            MatchingEngine::Bitset => {}
        }
        Self::oracle_bitset_cancellable(oracle, token)
    }

    /// The sequential matrix-free path: one bitset Hopcroft–Karp solve
    /// over the whole oracle. Shared by the env dispatcher above and by
    /// the sharded engine's certificate-failure fallback.
    pub(crate) fn oracle_bitset_cancellable(
        oracle: &RankOracle,
        token: &mc_obs::CancelToken,
    ) -> Result<Self, mc_obs::Cancelled> {
        let _span = mc_obs::span("path_cover");
        let n = oracle.len();
        if n == 0 {
            return Ok(Self {
                chains: Vec::new(),
                antichain: Vec::new(),
            });
        }
        let g = OracleGraph::new(oracle);
        let (matching, _) = HopcroftKarpBitset.solve_with_stats_cancellable(&g, token)?;
        token.poll()?;
        let chains = Self::chains_from_matching(n, &matching);
        let antichain = Self::antichain_from_cover(n, &g, &matching);
        Ok(Self::finish(chains, antichain))
    }

    /// Banded shard decomposition (`MC_MATCHING=shard`): cuts the
    /// points into at most `shards` contiguous rank bands, matches each
    /// band independently on worker threads, stitches chains across
    /// band boundaries, and repairs the stitched matching to a global
    /// maximum with a warm-started Hopcroft–Karp pass — so the width
    /// (and the König antichain certificate) is identical to the
    /// sequential engines even though the individual chains may differ.
    /// See [`crate::shard`] for the algorithm and its invariants.
    pub fn compute_sharded(oracle: &RankOracle, shards: usize) -> Self {
        Self::compute_sharded_cancellable(oracle, shards, &mc_obs::CancelToken::never())
            .expect("a never-token cannot cancel")
    }

    /// Cancellable twin of [`compute_sharded`](Self::compute_sharded):
    /// the token is threaded into every band's matching (per-shard
    /// checkpoints) and into the stitch and repair phases.
    pub fn compute_sharded_cancellable(
        oracle: &RankOracle,
        shards: usize,
        token: &mc_obs::CancelToken,
    ) -> Result<Self, mc_obs::Cancelled> {
        crate::shard::compute_sharded_cancellable(oracle, shards, token)
    }

    /// Computes the decomposition from a prebuilt [`DominanceIndex`],
    /// letting callers share one index between the Lemma-6 phase and
    /// later dominance queries (e.g. the passive solve on a subsample).
    /// Dispatches on the `MC_MATCHING` env toggle (bitset by default).
    pub fn compute_from_index(index: &DominanceIndex) -> Self {
        Self::compute_with_engine(index, MatchingEngine::from_env())
    }

    /// Cancellable twin of [`compute_from_index`](Self::compute_from_index).
    /// The bitset engine threads the token into Hopcroft–Karp; the list
    /// engine (exercised only via `MC_MATCHING=list`) polls once up
    /// front and runs to completion.
    pub fn compute_from_index_cancellable(
        index: &DominanceIndex,
        token: &mc_obs::CancelToken,
    ) -> Result<Self, mc_obs::Cancelled> {
        match MatchingEngine::from_env() {
            MatchingEngine::Bitset => Self::compute_bitset_cancellable(index, token),
            MatchingEngine::List => {
                token.poll()?;
                Ok(Self::from_dag(&DominanceDag::from_index(index)))
            }
            MatchingEngine::Shard => match effective_shards() {
                Some(k) => {
                    Self::compute_sharded_cancellable(&Self::oracle_from_index(index), k, token)
                }
                // Malformed MC_SHARDS: already warned, bitset fallback.
                None => Self::compute_bitset_cancellable(index, token),
            },
        }
    }

    /// Computes the decomposition with an explicit engine choice.
    pub fn compute_with_engine(index: &DominanceIndex, engine: MatchingEngine) -> Self {
        match engine {
            MatchingEngine::Bitset => Self::compute_bitset(index),
            MatchingEngine::List => Self::from_dag(&DominanceDag::from_index(index)),
            MatchingEngine::Shard => Self::compute_sharded(
                &Self::oracle_from_index(index),
                effective_shards().unwrap_or_else(default_shards),
            ),
        }
    }

    /// Lifts a prebuilt index's rank columns into a [`RankOracle`] so
    /// the sharded engine (which bands and gathers rank columns) can
    /// serve index-path callers too. `O(d·n)` copy; the ranks are the
    /// same compressed columns, so dominance answers — and the width —
    /// are identical.
    fn oracle_from_index(index: &DominanceIndex) -> RankOracle {
        let (n, dim) = (index.len(), index.dim());
        let mut ranks = Vec::with_capacity(dim * n);
        for k in 0..dim {
            ranks.extend_from_slice(index.rank_column(k));
        }
        RankOracle::from_rank_columns(n, dim, ranks)
    }

    /// Computes the decomposition straight off the index's bitset rows:
    /// the split bipartite graph borrows the dominator matrix (owned
    /// masked copies only for duplicated points), so no adjacency lists
    /// or DAG are ever materialized.
    pub fn compute_bitset(index: &DominanceIndex) -> Self {
        Self::compute_bitset_cancellable(index, &mc_obs::CancelToken::never())
            .expect("a never-token cannot cancel")
    }

    /// Cancellable twin of [`compute_bitset`](Self::compute_bitset):
    /// the token is threaded into the Hopcroft–Karp engine (polled per
    /// round and checkpointed on greedy-seed word scans) so a portfolio
    /// race can stop a losing chain decomposition mid-matching.
    pub fn compute_bitset_cancellable(
        index: &DominanceIndex,
        token: &mc_obs::CancelToken,
    ) -> Result<Self, mc_obs::Cancelled> {
        let _span = mc_obs::span("path_cover");
        let n = index.len();
        if n == 0 {
            return Ok(Self {
                chains: Vec::new(),
                antichain: Vec::new(),
            });
        }
        let g = BitsetGraph::from_index(index);
        let (matching, _) = HopcroftKarpBitset.solve_with_stats_cancellable(&g, token)?;
        token.poll()?;
        let chains = Self::chains_from_matching(n, &matching);
        let antichain = Self::antichain_from_cover(n, &g, &matching);
        Ok(Self::finish(chains, antichain))
    }

    /// Computes the decomposition from a pre-built dominance DAG.
    pub fn from_dag(dag: &DominanceDag) -> Self {
        let _span = mc_obs::span("path_cover");
        let n = dag.num_nodes();
        if n == 0 {
            return Self {
                chains: Vec::new(),
                antichain: Vec::new(),
            };
        }
        // Split bipartite graph: left copy = "tail" role, right = "head".
        let mut g = BipartiteGraph::new(n, n);
        for u in 0..n {
            for &v in dag.successors(u) {
                g.add_edge(u, v as usize);
            }
        }
        let matching = HopcroftKarp.solve(&g);
        let chains = Self::chains_from_matching(n, &matching);
        let antichain = Self::antichain_from_cover(n, &g, &matching);
        Self::finish(chains, antichain)
    }

    /// Shared tail of every construction path: Dilworth duality check
    /// plus the `chains.*` metrics.
    pub(crate) fn finish(chains: Vec<Vec<usize>>, antichain: Vec<usize>) -> Self {
        debug_assert_eq!(chains.len(), antichain.len(), "Dilworth duality violated");
        mc_obs::counter_add("chains.count", chains.len() as u64);
        if mc_obs::enabled() {
            let h = mc_obs::histogram("chains.chain_len");
            for c in &chains {
                h.record(c.len() as u64);
            }
        }
        Self { chains, antichain }
    }

    /// Follows matched successors from every chain head (a vertex whose
    /// right copy is unmatched).
    pub(crate) fn chains_from_matching(n: usize, matching: &Matching) -> Vec<Vec<usize>> {
        let mut chains = Vec::new();
        for start in 0..n {
            if matching.right_match[start].is_some() {
                continue; // not a chain head
            }
            let mut chain = vec![start];
            let mut cur = start;
            while let Some(next) = matching.left_match[cur] {
                cur = next as usize;
                chain.push(cur);
            }
            chains.push(chain);
        }
        chains
    }

    /// Maximum antichain: vertices neither of whose split copies lies in
    /// König's minimum vertex cover.
    pub(crate) fn antichain_from_cover<G: BipartiteAdjacency>(
        n: usize,
        g: &G,
        matching: &Matching,
    ) -> Vec<usize> {
        let cover = minimum_vertex_cover(g, matching);
        (0..n)
            .filter(|&v| !cover.left_in_cover[v] && !cover.right_in_cover[v])
            .collect()
    }

    /// The chains (ascending dominance order within each chain).
    pub fn chains(&self) -> &[Vec<usize>] {
        &self.chains
    }

    /// Chain `c` in ascending dominance order: `chain(c)[i + 1] ⪰
    /// chain(c)[i]`. Because `⪰` is transitive, any predicate of the form
    /// "`p ⪰` chain element" is monotone along the chain — downstream
    /// consumers (the passive solver's ladder gadget) exploit this to
    /// binary-search the deepest dominated element.
    pub fn chain(&self, c: usize) -> &[usize] {
        &self.chains[c]
    }

    /// The dominance width `w` (number of chains = max antichain size).
    pub fn width(&self) -> usize {
        self.chains.len()
    }

    /// A maximum antichain certifying minimality (its size equals
    /// [`ChainDecomposition::width`]).
    pub fn antichain(&self) -> &[usize] {
        &self.antichain
    }

    /// Verifies all structural invariants against `points`:
    /// the chains partition the index set, consecutive chain elements are
    /// dominance-comparable (ascending), the certificate is an antichain,
    /// and its size equals the number of chains.
    pub fn validate(&self, points: &PointSet) -> Result<(), String> {
        let n = points.len();
        let mut seen = vec![false; n];
        for (c, chain) in self.chains.iter().enumerate() {
            if chain.is_empty() {
                return Err(format!("chain {c} is empty"));
            }
            for &i in chain {
                if i >= n {
                    return Err(format!("chain {c} contains out-of-range index {i}"));
                }
                if seen[i] {
                    return Err(format!("index {i} appears in two chains"));
                }
                seen[i] = true;
            }
            for pair in chain.windows(2) {
                if !points.dominates(pair[1], pair[0]) {
                    return Err(format!(
                        "chain {c}: point {} does not dominate its predecessor {}",
                        pair[1], pair[0]
                    ));
                }
            }
        }
        if seen.iter().any(|&s| !s) {
            return Err("chains do not cover every point".into());
        }
        for (a, &i) in self.antichain.iter().enumerate() {
            for &j in &self.antichain[a + 1..] {
                if points.dominates(i, j) || points.dominates(j, i) {
                    return Err(format!("certificate points {i} and {j} are comparable"));
                }
            }
        }
        if self.antichain.len() != self.chains.len() {
            return Err(format!(
                "certificate size {} != chain count {}",
                self.antichain.len(),
                self.chains.len()
            ));
        }
        Ok(())
    }
}

/// The dominance width `w` of a point set: the size of its largest
/// antichain (Section 1.2 of the paper).
pub fn dominance_width(points: &PointSet) -> usize {
    ChainDecomposition::compute(points).width()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_chain_in_1d() {
        let points = PointSet::from_values_1d(&[5.0, 2.0, 9.0, 1.0]);
        let dec = ChainDecomposition::compute(&points);
        assert_eq!(dec.width(), 1);
        dec.validate(&points).unwrap();
        // The single chain must be fully sorted ascending.
        let chain = &dec.chains()[0];
        let vals: Vec<f64> = chain.iter().map(|&i| points.point(i)[0]).collect();
        assert_eq!(vals, vec![1.0, 2.0, 5.0, 9.0]);
    }

    #[test]
    fn pure_antichain() {
        let points = PointSet::from_rows(
            2,
            &[
                vec![0.0, 3.0],
                vec![1.0, 2.0],
                vec![2.0, 1.0],
                vec![3.0, 0.0],
            ],
        );
        let dec = ChainDecomposition::compute(&points);
        assert_eq!(dec.width(), 4);
        assert_eq!(dec.antichain().len(), 4);
        dec.validate(&points).unwrap();
    }

    #[test]
    fn grid_width_is_side_length() {
        // A k×k grid of points (i, j): the width equals k (the
        // anti-diagonal is a maximum antichain).
        let k = 5;
        let mut rows = Vec::new();
        for i in 0..k {
            for j in 0..k {
                rows.push(vec![i as f64, j as f64]);
            }
        }
        let points = PointSet::from_rows(2, &rows);
        let dec = ChainDecomposition::compute(&points);
        assert_eq!(dec.width(), k);
        dec.validate(&points).unwrap();
    }

    #[test]
    fn duplicates_share_a_chain() {
        let points = PointSet::from_rows(2, &[vec![1.0, 1.0], vec![1.0, 1.0], vec![1.0, 1.0]]);
        let dec = ChainDecomposition::compute(&points);
        assert_eq!(dec.width(), 1);
        dec.validate(&points).unwrap();
    }

    #[test]
    fn empty_and_singleton() {
        let empty = PointSet::new(3);
        let dec = ChainDecomposition::compute(&empty);
        assert_eq!(dec.width(), 0);
        dec.validate(&empty).unwrap();

        let single = PointSet::from_rows(3, &[vec![1.0, 2.0, 3.0]]);
        let dec = ChainDecomposition::compute(&single);
        assert_eq!(dec.width(), 1);
        dec.validate(&single).unwrap();
    }

    #[test]
    fn oracle_path_reproduces_matrix_path_exactly() {
        // Same chains, same antichain — not merely the same width: the
        // oracle rows are bit-identical to the matrix rows, so every
        // tie-break in the matching engine resolves the same way.
        let cases = [
            crate::test_support::figure1_like_points(),
            PointSet::from_rows(2, &[vec![1.0, 1.0], vec![1.0, 1.0], vec![1.0, 1.0]]),
            PointSet::from_values_1d(&[5.0, 2.0, 9.0, 1.0, 2.0]),
        ];
        for points in &cases {
            let via_matrix = ChainDecomposition::compute_from_index(&DominanceIndex::build(points));
            let via_oracle = ChainDecomposition::compute_from_oracle(&RankOracle::build(points));
            assert_eq!(via_matrix.chains(), via_oracle.chains());
            assert_eq!(via_matrix.antichain(), via_oracle.antichain());
            via_oracle.validate(points).unwrap();
        }
    }

    #[test]
    fn oracle_path_handles_empty_input() {
        let dec = ChainDecomposition::compute_from_oracle(&RankOracle::build(&PointSet::new(2)));
        assert_eq!(dec.width(), 0);
    }

    #[test]
    fn try_compute_respects_matrix_budget() {
        // 10 bytes cannot hold any dominator matrix with n >= 2; the
        // guard must refuse with the typed error instead of building.
        std::env::set_var("MC_MATRIX_BUDGET_BYTES", "10");
        let points = PointSet::from_rows(2, &[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let err = ChainDecomposition::try_compute(&points).unwrap_err();
        std::env::remove_var("MC_MATRIX_BUDGET_BYTES");
        match err {
            GeomError::MatrixBudget {
                points: n,
                budget_bytes,
                ..
            } => {
                assert_eq!(n, 2);
                assert_eq!(budget_bytes, 10);
            }
            other => panic!("expected MatrixBudget, got {other:?}"),
        }
        // With the budget lifted the same input solves fine.
        assert_eq!(ChainDecomposition::try_compute(&points).unwrap().width(), 2);
    }

    #[test]
    fn paper_figure1_has_width_6() {
        // Section 2 of the paper decomposes the Figure-1 input into 6
        // chains. We reproduce a 16-point configuration with the same
        // chain/antichain structure: 6 chains of sizes 5,1,3,1,1,5.
        let points = crate::test_support::figure1_like_points();
        let dec = ChainDecomposition::compute(&points);
        assert_eq!(dec.width(), 6);
        dec.validate(&points).unwrap();
        let mut sizes: Vec<usize> = dec.chains().iter().map(|c| c.len()).collect();
        sizes.sort_unstable();
        assert_eq!(sizes.iter().sum::<usize>(), 16);
    }
}
