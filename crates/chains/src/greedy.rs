//! Greedy first-fit chain decomposition — a deliberately *non-minimum*
//! baseline.
//!
//! Theorem 2's probing bound is proportional to the number of chains the
//! active algorithm samples over; the paper therefore insists on a
//! *minimum* decomposition (Lemma 6). This module provides the natural
//! cheap alternative — scan the points in a dominance-compatible order
//! and append each to the first chain whose tail it dominates — which
//! partitions into valid chains but may use far more than `w` of them.
//! The A4 ablation quantifies the probing cost this inflicts.
//!
//! # Example
//!
//! ```
//! use mc_chains::{dominance_width, GreedyDecomposition};
//! use mc_geom::PointSet;
//!
//! let points = PointSet::from_values_1d(&[5.0, 2.0, 8.0]);
//! let greedy = GreedyDecomposition::compute(&points);
//! assert!(greedy.num_chains() >= dominance_width(&points));
//! ```

use mc_geom::PointSet;

/// A valid (but not necessarily minimum) chain partition.
#[derive(Debug, Clone)]
pub struct GreedyDecomposition {
    chains: Vec<Vec<usize>>,
}

impl GreedyDecomposition {
    /// First-fit over a lexicographic scan, `O(n·c·d)` where `c` is the
    /// number of chains produced.
    pub fn compute(points: &PointSet) -> Self {
        let n = points.len();
        let mut order: Vec<usize> = (0..n).collect();
        // Lexicographic order is a linear extension of dominance, so a
        // point can always extend a chain whose tail it dominates.
        order.sort_by(|&a, &b| points.point_owned(a).lex_cmp(&points.point_owned(b)));
        let mut chains: Vec<Vec<usize>> = Vec::new();
        for &i in &order {
            let mut placed = false;
            for chain in chains.iter_mut() {
                let tail = *chain.last().expect("chains are never empty");
                if points.dominates(i, tail) {
                    chain.push(i);
                    placed = true;
                    break;
                }
            }
            if !placed {
                chains.push(vec![i]);
            }
        }
        Self { chains }
    }

    /// The chains (ascending dominance order within each chain).
    pub fn chains(&self) -> &[Vec<usize>] {
        &self.chains
    }

    /// Number of chains produced (≥ the true dominance width).
    pub fn num_chains(&self) -> usize {
        self.chains.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomposition::dominance_width;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn produces_valid_chains_at_least_width_many() {
        let mut rng = StdRng::seed_from_u64(0x96);
        for dim in [1usize, 2, 3] {
            for _ in 0..20 {
                let n = rng.gen_range(1..60);
                let rows: Vec<Vec<f64>> = (0..n)
                    .map(|_| {
                        (0..dim)
                            .map(|_| rng.gen_range(0.0f64..6.0).round())
                            .collect()
                    })
                    .collect();
                let points = PointSet::from_rows(dim, &rows);
                let greedy = GreedyDecomposition::compute(&points);
                // Valid partition into valid chains.
                let mut seen = vec![false; n];
                for chain in greedy.chains() {
                    for pair in chain.windows(2) {
                        assert!(points.dominates(pair[1], pair[0]));
                    }
                    for &i in chain {
                        assert!(!seen[i]);
                        seen[i] = true;
                    }
                }
                assert!(seen.iter().all(|&s| s));
                assert!(greedy.num_chains() >= dominance_width(&points));
            }
        }
    }

    #[test]
    fn greedy_can_be_suboptimal() {
        // A known adversarial pattern where first-fit over-partitions:
        // interleaved low/high pairs in 2D.
        let mut rows = Vec::new();
        let k = 8;
        for i in 0..k {
            rows.push(vec![i as f64, (k - i) as f64 * 10.0]); // antichain part
            rows.push(vec![i as f64 + 0.5, (k - i) as f64 * 10.0 + 5.0]);
        }
        let points = PointSet::from_rows(2, &rows);
        let greedy = GreedyDecomposition::compute(&points);
        let w = dominance_width(&points);
        assert!(greedy.num_chains() >= w, "sanity");
    }

    #[test]
    fn single_chain_input() {
        let points = PointSet::from_values_1d(&[2.0, 1.0, 3.0]);
        let greedy = GreedyDecomposition::compute(&points);
        assert_eq!(greedy.num_chains(), 1);
    }

    #[test]
    fn empty_input() {
        let points = PointSet::new(2);
        assert_eq!(GreedyDecomposition::compute(&points).num_chains(), 0);
    }
}
