//! Fast minimum chain decomposition for `d = 2` in `O(n log n)`.
//!
//! The generic Lemma-6 pipeline costs `O(d·n² + n^2.5)`; in two
//! dimensions the poset is a *permutation-like* order and a patience-pile
//! greedy is optimal: sort by `(x, y)` ascending and scan, appending each
//! point to a chain whose last point it dominates — always the chain
//! whose last `y` is the **largest value still ≤ y** (tightest fit). If
//! none fits, open a new chain.
//!
//! Optimality: the chain tails (their `y` values) form a strictly
//! decreasing multiset across piles at all times (standard patience
//! argument); when the `k`-th pile opens, the current point together with
//! each previous pile's tail at that moment forms a `k`-point antichain
//! (each earlier tail has `x ≤` — but `y >` — the new point; with equal
//! `x` handled by the `y`-ascending sort tie-break, a same-`x` earlier
//! point would have `y ≤` and thus fit its pile). Hence the number of
//! piles equals the maximum antichain size — Dilworth equality — and the
//! anti-chain certificate can be recovered by back-pointers.
//!
//! # Example
//!
//! ```
//! use mc_chains::TwoDimDecomposition;
//! use mc_geom::PointSet;
//!
//! let points = PointSet::from_rows(2, &[vec![0.0, 1.0], vec![1.0, 0.0], vec![2.0, 2.0]]);
//! let dec = TwoDimDecomposition::compute(&points);
//! assert_eq!(dec.width(), 2);
//! dec.validate(&points).unwrap();
//! ```

use mc_geom::PointSet;

/// A minimum chain decomposition of a 2D point set, with a maximum
/// antichain certificate, computed in `O(n log n)`.
#[derive(Debug, Clone)]
pub struct TwoDimDecomposition {
    chains: Vec<Vec<usize>>,
    antichain: Vec<usize>,
}

impl TwoDimDecomposition {
    /// Computes the decomposition.
    ///
    /// # Panics
    ///
    /// Panics if `points.dim() != 2`.
    pub fn compute(points: &PointSet) -> Self {
        assert_eq!(points.dim(), 2, "TwoDimDecomposition requires d = 2");
        let n = points.len();
        if n == 0 {
            return Self {
                chains: Vec::new(),
                antichain: Vec::new(),
            };
        }
        // Sort by (x, y) ascending (IEEE total order).
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            let pa = points.point(a);
            let pb = points.point(b);
            pa[0].total_cmp(&pb[0]).then(pa[1].total_cmp(&pb[1]))
        });

        // Piles, identified by the y of their current tail. `tails` is
        // kept sorted strictly decreasing.
        let mut chains: Vec<Vec<usize>> = Vec::new();
        let mut tail_y: Vec<f64> = Vec::new(); // strictly decreasing
                                               // For the certificate: when a point opens pile k, remember the
                                               // point and, for each point placed on pile k, the tail of pile
                                               // k-1 at that moment (a strictly "above-left" predecessor).
        let mut predecessor: Vec<Option<usize>> = vec![None; n];
        let mut tails_idx: Vec<usize> = Vec::new(); // current tail point of each pile

        for &p in &order {
            let y = points.point(p)[1];
            // Find the pile with the largest tail_y ≤ y: tails are
            // strictly decreasing, so binary search for the first tail ≤ y.
            let pos = tail_y.partition_point(|&t| t > y);
            if pos == tail_y.len() {
                // New pile.
                if pos > 0 {
                    predecessor[p] = Some(tails_idx[pos - 1]);
                }
                chains.push(vec![p]);
                tail_y.push(y);
                tails_idx.push(p);
            } else {
                if pos > 0 {
                    predecessor[p] = Some(tails_idx[pos - 1]);
                }
                chains[pos].push(p);
                tail_y[pos] = y;
                tails_idx[pos] = p;
            }
            // Re-establish strict decrease: tail_y[pos] = y could equal
            // tail_y[pos-1]? No: tail_y[pos-1] > y by the partition point
            // (strictly), and tail_y[pos+1..] stay < y because the old
            // tail_y[pos] ≤ y and the sequence was decreasing.
            debug_assert!(
                tail_y.windows(2).all(|w| w[0] > w[1]),
                "pile tails must stay strictly decreasing"
            );
        }

        // Certificate: start from the last pile's final opener... the
        // standard construction walks predecessors from the last pile's
        // tail at the end of the scan.
        let mut antichain = Vec::with_capacity(chains.len());
        let mut cur = tails_idx.last().copied();
        while let Some(p) = cur {
            antichain.push(p);
            cur = predecessor[p];
        }
        antichain.reverse();

        Self { chains, antichain }
    }

    /// The chains (ascending dominance order within each chain).
    pub fn chains(&self) -> &[Vec<usize>] {
        &self.chains
    }

    /// The dominance width.
    pub fn width(&self) -> usize {
        self.chains.len()
    }

    /// A maximum antichain certificate (size equals the chain count).
    pub fn antichain(&self) -> &[usize] {
        &self.antichain
    }

    /// Converts into the generic [`ChainDecomposition`](crate::ChainDecomposition)-style validation:
    /// checks partition, chain validity, certificate antichain-ness and
    /// Dilworth equality.
    pub fn validate(&self, points: &PointSet) -> Result<(), String> {
        let n = points.len();
        let mut seen = vec![false; n];
        for (c, chain) in self.chains.iter().enumerate() {
            if chain.is_empty() {
                return Err(format!("chain {c} empty"));
            }
            for &i in chain {
                if seen[i] {
                    return Err(format!("index {i} in two chains"));
                }
                seen[i] = true;
            }
            for pair in chain.windows(2) {
                if !points.dominates(pair[1], pair[0]) {
                    return Err(format!("chain {c}: {} !⪰ {}", pair[1], pair[0]));
                }
            }
        }
        if seen.iter().any(|&s| !s) {
            return Err("chains do not cover all points".into());
        }
        for (a, &i) in self.antichain.iter().enumerate() {
            for &j in &self.antichain[a + 1..] {
                if points.dominates(i, j) || points.dominates(j, i) {
                    return Err(format!("certificate {i}, {j} comparable"));
                }
            }
        }
        if self.antichain.len() != self.chains.len() {
            return Err(format!(
                "certificate size {} != chain count {}",
                self.antichain.len(),
                self.chains.len()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomposition::ChainDecomposition;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_2d(n: usize, grid: f64, rng: &mut StdRng) -> PointSet {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| {
                vec![
                    rng.gen_range(0.0..grid).round(),
                    rng.gen_range(0.0..grid).round(),
                ]
            })
            .collect();
        PointSet::from_rows(2, &rows)
    }

    #[test]
    fn agrees_with_matching_based_width() {
        let mut rng = StdRng::seed_from_u64(0x2D);
        for trial in 0..60 {
            let n = rng.gen_range(1..80);
            let grid = *[4.0, 20.0, 1000.0].get(trial % 3).unwrap();
            let points = random_2d(n, grid, &mut rng);
            let fast = TwoDimDecomposition::compute(&points);
            fast.validate(&points)
                .unwrap_or_else(|e| panic!("trial {trial}: {e}\n{points:?}"));
            let generic = ChainDecomposition::compute(&points);
            assert_eq!(
                fast.width(),
                generic.width(),
                "trial {trial}: width mismatch on {points:?}"
            );
        }
    }

    #[test]
    fn empty_and_single() {
        let empty = PointSet::new(2);
        let dec = TwoDimDecomposition::compute(&empty);
        assert_eq!(dec.width(), 0);
        let single = PointSet::from_rows(2, &[vec![1.0, 2.0]]);
        let dec = TwoDimDecomposition::compute(&single);
        assert_eq!(dec.width(), 1);
        dec.validate(&single).unwrap();
    }

    #[test]
    fn figure1_width_6() {
        let points = crate::test_support::figure1_like_points();
        let dec = TwoDimDecomposition::compute(&points);
        assert_eq!(dec.width(), 6);
        dec.validate(&points).unwrap();
    }

    #[test]
    fn pure_chain_and_pure_antichain() {
        let chain = PointSet::from_rows(2, &[vec![0.0, 0.0], vec![1.0, 1.0], vec![2.0, 2.0]]);
        assert_eq!(TwoDimDecomposition::compute(&chain).width(), 1);
        let anti = PointSet::from_rows(2, &[vec![0.0, 2.0], vec![1.0, 1.0], vec![2.0, 0.0]]);
        let dec = TwoDimDecomposition::compute(&anti);
        assert_eq!(dec.width(), 3);
        dec.validate(&anti).unwrap();
    }

    #[test]
    fn duplicates_share_chain() {
        let points = PointSet::from_rows(2, &vec![vec![1.0, 1.0]; 4]);
        let dec = TwoDimDecomposition::compute(&points);
        assert_eq!(dec.width(), 1);
        dec.validate(&points).unwrap();
    }

    #[test]
    fn equal_x_distinct_y() {
        // Same x: comparable via y; must fall into one chain.
        let points = PointSet::from_rows(2, &[vec![1.0, 3.0], vec![1.0, 1.0], vec![1.0, 2.0]]);
        let dec = TwoDimDecomposition::compute(&points);
        assert_eq!(dec.width(), 1);
        dec.validate(&points).unwrap();
    }

    #[test]
    fn large_input_fast() {
        let mut rng = StdRng::seed_from_u64(0xFA57);
        let points = random_2d(50_000, 1e6, &mut rng);
        let t0 = std::time::Instant::now();
        let dec = TwoDimDecomposition::compute(&points);
        assert!(dec.width() > 100);
        assert!(
            t0.elapsed().as_secs_f64() < 5.0,
            "O(n log n) path too slow: {:?}",
            t0.elapsed()
        );
        dec.validate(&points).unwrap();
    }
}
