//! Shared fixtures for this crate's tests.
//!
//! The canonical, fully-labeled version of the paper's Figure-1 example
//! lives in `mc-data::paper_example`; this module only carries the bare
//! coordinates so `mc-chains` (a dependency of `mc-data`) can test against
//! the same geometry without a dependency cycle.

use mc_geom::PointSet;

/// Coordinates of a 16-point configuration with the chain/antichain
/// structure of the paper's Figure 1: dominance width 6, chains of sizes
/// {5, 1, 3, 1, 1, 5}, maximum antichain `{p10, p11, p12, p13, p14, p16}`.
///
/// Index `i` holds point `p_{i+1}` of the paper.
pub fn figure1_like_points() -> PointSet {
    PointSet::from_rows(
        2,
        &[
            vec![1.0, 1.5],   // p1
            vec![2.0, 3.0],   // p2
            vec![3.0, 4.0],   // p3
            vec![5.0, 5.0],   // p4
            vec![2.0, 6.0],   // p5
            vec![8.0, 0.2],   // p6
            vec![9.0, 0.4],   // p7
            vec![10.0, 0.6],  // p8
            vec![2.5, 8.0],   // p9
            vec![7.0, 14.0],  // p10
            vec![5.0, 16.0],  // p11
            vec![3.0, 18.0],  // p12
            vec![9.0, 12.0],  // p13
            vec![11.0, 10.0], // p14
            vec![12.0, 13.0], // p15
            vec![1.0, 20.0],  // p16
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_geom::dominance::incomparable;

    #[test]
    fn stated_chains_are_valid() {
        let pts = figure1_like_points();
        // 1-based chains from Section 2 of the paper.
        let chains: [&[usize]; 6] = [
            &[1, 2, 3, 4, 10],
            &[11],
            &[5, 9, 12],
            &[16],
            &[13],
            &[6, 7, 8, 14, 15],
        ];
        for chain in chains {
            for pair in chain.windows(2) {
                assert!(
                    pts.dominates(pair[1] - 1, pair[0] - 1),
                    "p{} should dominate p{}",
                    pair[1],
                    pair[0]
                );
            }
        }
        let mut all: Vec<usize> = chains.iter().flat_map(|c| c.iter().copied()).collect();
        all.sort_unstable();
        assert_eq!(all, (1..=16).collect::<Vec<_>>());
    }

    #[test]
    fn stated_antichain_is_an_antichain() {
        let pts = figure1_like_points();
        let anti = [10, 11, 12, 13, 14, 16];
        for (a, &i) in anti.iter().enumerate() {
            for &j in &anti[a + 1..] {
                assert!(
                    incomparable(pts.point(i - 1), pts.point(j - 1)),
                    "p{i} and p{j} should be incomparable"
                );
            }
        }
    }

    #[test]
    fn brute_force_width_is_6() {
        assert_eq!(crate::brute::brute_force_width(&figure1_like_points()), 6);
    }
}
