//! Chain decomposition and dominance width (Lemma 6 of the paper).
//!
//! The *dominance width* `w` of a point set `P` is the size of its largest
//! antichain. By Dilworth's theorem, `w` is also the minimum number of
//! chains partitioning `P`, and the paper's active classifier (Section 4)
//! processes each such chain as an independent 1D problem. This crate
//! implements the constructive `O(d·n² + n^2.5)` pipeline from the proof
//! of Lemma 6:
//!
//! dominance DAG → split bipartite graph → Hopcroft–Karp matching →
//! minimum path cover (= chains) + König antichain certificate.
//!
//! By default the "DAG" step is virtual: the split graph is read
//! directly off the `mc_geom::DominanceIndex` bitset rows and matched
//! with the word-parallel `HopcroftKarpBitset` engine (see
//! [`decomposition::MatchingEngine`] and the `MC_MATCHING` env toggle).
//!
//! # Example
//!
//! ```
//! use mc_chains::ChainDecomposition;
//! use mc_geom::PointSet;
//!
//! // Two crossing points + one on top: width 2.
//! let points = PointSet::from_rows(2, &[
//!     vec![0.0, 1.0],
//!     vec![1.0, 0.0],
//!     vec![2.0, 2.0],
//! ]);
//! let dec = ChainDecomposition::compute(&points);
//! assert_eq!(dec.width(), 2);
//! assert_eq!(dec.antichain().len(), 2);
//! dec.validate(&points).unwrap();
//! ```

pub mod brute;
pub mod dag;
pub mod decomposition;
pub mod greedy;
pub mod mirsky;
pub mod shard;
pub mod test_support;
pub mod two_dim;

pub use dag::DominanceDag;
pub use decomposition::{
    dominance_width, with_matching_override, ChainDecomposition, MatchingEngine,
};
pub use greedy::GreedyDecomposition;
pub use mirsky::{longest_chain_len, AntichainPartition};
pub use two_dim::TwoDimDecomposition;

#[cfg(test)]
mod tests {
    use super::*;
    use mc_geom::PointSet;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn decomposition_always_valid_on_random_sets() {
        let mut rng = StdRng::seed_from_u64(0xC4A1);
        for dim in [1usize, 2, 4] {
            for _ in 0..10 {
                let n = rng.gen_range(1..60);
                let rows: Vec<Vec<f64>> = (0..n)
                    .map(|_| (0..dim).map(|_| rng.gen_range(0.0..8.0)).collect())
                    .collect();
                let points = PointSet::from_rows(dim, &rows);
                let dec = ChainDecomposition::compute(&points);
                dec.validate(&points).unwrap();
            }
        }
    }

    #[test]
    fn higher_dimension_no_smaller_width() {
        // Appending an extra dimension with constant value keeps the
        // width identical.
        let rows = vec![vec![0.0, 2.0], vec![1.0, 1.0], vec![2.0, 0.0]];
        let base = PointSet::from_rows(2, &rows);
        let lifted_rows: Vec<Vec<f64>> = rows
            .iter()
            .map(|r| {
                let mut r = r.clone();
                r.push(5.0);
                r
            })
            .collect();
        let lifted = PointSet::from_rows(3, &lifted_rows);
        assert_eq!(dominance_width(&base), dominance_width(&lifted));
    }
}
