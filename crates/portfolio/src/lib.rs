//! Fault-isolated engine racing for the passive solver.
//!
//! Theorem 4 admits several interchangeable engines — two max-flow
//! algorithms (Dinic, FIFO push-relabel) crossed with three network
//! gadgets (dense, sweep, chain ladder) — whose relative speed depends
//! on the instance: dominance width, contention density, and dimension
//! swing the winner by orders of magnitude. Rather than predict, this
//! crate **races** a portfolio of engines on worker threads and returns
//! the first answer that survives refereeing:
//!
//! * every engine runs a cancellable solve over shared immutable
//!   inputs, polling a [`CancelToken`](mc_obs::CancelToken) at least
//!   every ~64k units of work, so losers stop within milliseconds of
//!   the winner finishing;
//! * every worker is wrapped in `catch_unwind`: a panicking engine is
//!   isolated, tallied in [`SolveReport::engine_panics`], and the race
//!   continues on the survivors;
//! * the referee ([`Certificate::verify`]) audits each candidate
//!   answer against the raw data before declaring it the winner — an
//!   engine whose flow decomposition does not prove its own optimum is
//!   disqualified, not trusted;
//! * a race-wide deadline degrades gracefully: on total timeout the
//!   coordinator falls back to the certified reference engine (or
//!   surfaces [`McError::Timeout`] when fallback is disabled).
//!
//! Outcome rates per engine flow through `mc-obs` as
//! `portfolio.engine.<name>.{wins,panics,timeouts,cancelled,…}`
//! counters, and an in-process [`History`] ranks engines by win rate so
//! later races in the same process start their likeliest winners first.
//!
//! [`SolveReport::engine_panics`]: mc_core::SolveReport
//! [`Certificate::verify`]: mc_core::passive::Certificate::verify
//! [`McError::Timeout`]: mc_core::McError
//!
//! # Example
//!
//! ```
//! use mc_geom::{Label, WeightedSet};
//! use mc_portfolio::{race, EngineSpec, PortfolioConfig};
//!
//! let mut data = WeightedSet::empty(1);
//! data.push(&[0.0], Label::One, 3.0);
//! data.push(&[1.0], Label::Zero, 1.0);
//! // A real engine races injected faults and still wins with the
//! // certified optimum.
//! let config = PortfolioConfig::new(vec![
//!     EngineSpec::Panic,
//!     EngineSpec::AutoDinic,
//! ]);
//! let out = race(&data, &config).unwrap();
//! assert_eq!(out.solution.weighted_error, 1.0);
//! assert_eq!(out.report.engine_panics, 1);
//! out.certificate.verify(&data).unwrap();
//! ```

pub mod engine;
pub mod history;
pub mod race;

pub use engine::EngineSpec;
pub use history::History;
pub use race::{race, EngineOutcome, PortfolioConfig, PortfolioOutcome, RaceReport};
