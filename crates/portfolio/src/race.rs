//! The race coordinator: launch, referee, cancel, fall back.
//!
//! [`race`] spawns every configured engine on its own worker thread
//! over the same borrowed immutable input, then plays referee:
//!
//! 1. the first engine to finish has its [`Certificate`] independently
//!    audited against the raw data — a failed audit **disqualifies**
//!    that engine and the race continues;
//! 2. the first *verified* finisher wins; every other engine's
//!    [`CancelToken`] is cancelled and the coordinator drains their
//!    exits, measuring cancellation latency (`portfolio.cancel_latency_ms`);
//! 3. a panicking engine is contained by `catch_unwind` — its thread's
//!    state is dropped wholesale, the panic is tallied, and nobody else
//!    notices;
//! 4. if a deadline is set, every token carries it, so engines unwind
//!    on their own; should *no* engine produce a verified answer, the
//!    coordinator either falls back to the certified reference engine
//!    ([`EngineSpec::AutoDinic`], run without a deadline) or surfaces
//!    [`McError::Timeout`] when fallback is disabled.
//!
//! Every outcome is double-booked: globally
//! (`portfolio.{wins,losses,panics,timeouts,cancelled,disqualified,fallbacks}`)
//! and per engine (`portfolio.engine.<name>.*`), and recorded in the
//! process-wide [`History`] so subsequent races start likelier winners
//! first.

use crate::engine::EngineSpec;
use crate::history::History;
use mc_core::passive::{Certificate, PassiveSolution};
use mc_core::{McError, SolveReport};
use mc_geom::WeightedSet;
use mc_obs::json::Value;
use mc_obs::{CancelCause, CancelToken, Cancelled};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Configuration of one race.
#[derive(Debug, Clone)]
pub struct PortfolioConfig {
    /// The engines to launch, in preference order (history may reorder;
    /// see [`rank_by_history`](Self::rank_by_history)).
    pub engines: Vec<EngineSpec>,
    /// Race-wide deadline carried by every engine's token. `None` races
    /// without a watchdog — fine for all-real rosters, but a
    /// non-terminating engine can then only be stopped by a winner.
    pub time_limit: Option<Duration>,
    /// When no engine produces a verified answer before the deadline,
    /// run the certified reference engine synchronously instead of
    /// failing (default `true`). With `false` the race surfaces
    /// [`McError::Timeout`].
    pub fallback_on_timeout: bool,
    /// Let the process-wide [`History`] reorder the roster by win rate
    /// (default `true`; stable, so ties keep the configured order).
    pub rank_by_history: bool,
    /// External kill switch: when this token stops (e.g. the telemetry
    /// stall watchdog cancelled it), the coordinator cancels every
    /// engine token and the race drains as `Cancelled` (default
    /// `None`). Distinct from the per-engine deadline tokens: those
    /// belong to the race; this one belongs to whoever is watching it.
    pub watchdog: Option<CancelToken>,
}

impl PortfolioConfig {
    /// A config racing `engines` with fallback enabled and no deadline.
    pub fn new(engines: Vec<EngineSpec>) -> Self {
        Self {
            engines,
            time_limit: None,
            fallback_on_timeout: true,
            rank_by_history: true,
            watchdog: None,
        }
    }

    /// Sets the race-wide deadline.
    pub fn with_time_limit(mut self, limit: Duration) -> Self {
        self.time_limit = Some(limit);
        self
    }

    /// Disables the reference-engine fallback (timeouts become errors).
    pub fn without_fallback(mut self) -> Self {
        self.fallback_on_timeout = false;
        self
    }

    /// Attaches an external kill-switch token (see
    /// [`watchdog`](Self::watchdog)).
    pub fn with_watchdog(mut self, token: CancelToken) -> Self {
        self.watchdog = Some(token);
        self
    }
}

impl Default for PortfolioConfig {
    /// The default roster: the reference engine plus the two most
    /// complementary specialists (sparse Dinic for wide instances,
    /// dense push-relabel for small dense ones).
    fn default() -> Self {
        Self::new(vec![
            EngineSpec::AutoDinic,
            EngineSpec::SparseDinic,
            EngineSpec::DensePushRelabel,
        ])
    }
}

/// How one engine's run ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineOutcome {
    /// First verified finisher.
    Won,
    /// Finished a correct-looking answer after the winner (its result
    /// is discarded — answers are only compared by the referee's audit,
    /// never mixed).
    Lost,
    /// Finished first but failed the referee's certificate audit.
    Disqualified {
        /// The audit's complaint, verbatim.
        reason: String,
    },
    /// Observed its token's explicit cancellation (a rival won).
    Cancelled,
    /// Observed its token's deadline expiry.
    TimedOut,
    /// Panicked; the worker was isolated and its state dropped.
    Panicked {
        /// The payload, when it was a string.
        message: String,
    },
}

/// What happened across one race.
#[derive(Debug, Clone)]
pub struct RaceReport {
    /// The verified winner, if any engine produced one.
    pub winner: Option<EngineSpec>,
    /// Outcome per launched engine, in launch order.
    pub outcomes: Vec<(EngineSpec, EngineOutcome)>,
    /// `true` iff the answer came from the synchronous reference
    /// fallback rather than the race.
    pub fallback_used: bool,
    /// Wall time from cancelling the losers to the last worker exiting.
    pub cancel_latency: Option<Duration>,
}

impl RaceReport {
    /// Count of outcomes matching `pred`.
    fn count(&self, pred: impl Fn(&EngineOutcome) -> bool) -> usize {
        self.outcomes.iter().filter(|(_, o)| pred(o)).count()
    }
}

/// A race's answer: the winning (or fallback) solution, its audited
/// certificate, and the two reports.
#[derive(Debug, Clone)]
pub struct PortfolioOutcome {
    /// The optimal passive solution.
    pub solution: PassiveSolution,
    /// The dual certificate that survived [`Certificate::verify`].
    pub certificate: Certificate,
    /// Per-engine racing outcomes.
    pub race: RaceReport,
    /// The solver-level resilience report (`engine_panics` counts the
    /// isolated workers).
    pub report: SolveReport,
}

type EngineMessage = (
    usize,
    Duration,
    std::thread::Result<Result<(PassiveSolution, Certificate), Cancelled>>,
);

/// Races `config.engines` on `data` and returns the first verified
/// answer. See the module docs for the protocol.
///
/// # Errors
///
/// [`McError::InvalidParameter`] on an empty roster;
/// [`McError::Timeout`] / [`McError::Cancelled`] when no engine
/// produced a verified answer and fallback is disabled.
pub fn race(data: &WeightedSet, config: &PortfolioConfig) -> Result<PortfolioOutcome, McError> {
    let _span = mc_obs::span("portfolio");
    if config.engines.is_empty() {
        return Err(McError::invalid_parameter(
            "portfolio: engine roster is empty",
        ));
    }
    let history = History::global();
    let mut engines = config.engines.clone();
    if config.rank_by_history {
        history.rank(&mut engines);
    }
    mc_obs::counter_add("portfolio.races", 1);

    let (tx, rx) = mpsc::channel::<EngineMessage>();
    let tokens: Vec<CancelToken> = engines
        .iter()
        .map(|_| match config.time_limit {
            Some(limit) => CancelToken::with_deadline(limit),
            None => CancelToken::new(),
        })
        .collect();

    let mut outcomes: Vec<Option<EngineOutcome>> = vec![None; engines.len()];
    let mut winner: Option<(usize, PassiveSolution, Certificate)> = None;
    let mut cancel_latency = None;

    std::thread::scope(|scope| {
        for (i, &spec) in engines.iter().enumerate() {
            let tx = tx.clone();
            let token = tokens[i].clone();
            scope.spawn(move || {
                let _span = mc_obs::span(spec.name());
                let started = Instant::now();
                let result = catch_unwind(AssertUnwindSafe(|| spec.run(data, &token)));
                // The receiver only disappears once every worker has
                // reported, so this send cannot fail while we run.
                let _ = tx.send((i, started.elapsed(), result));
            });
        }
        drop(tx);

        // Watchdog margin past the engines' own deadline: a cooperative
        // engine observes expiry within one checkpoint, so a generous
        // grace only matters if one wedges in non-polling code.
        let grace = Duration::from_millis(500);
        let started = Instant::now();
        let mut cancel_started: Option<Instant> = None;
        let mut pending = engines.len();
        while pending > 0 {
            let waiting =
                winner.is_none() && (config.time_limit.is_some() || config.watchdog.is_some());
            let message = if waiting {
                let budget = match config.time_limit {
                    Some(limit) => (limit + grace).saturating_sub(started.elapsed()),
                    None => Duration::MAX,
                };
                // With an external watchdog attached, wake periodically
                // to check it — its trip arrives on another thread's
                // schedule, not through the channel.
                let slice = if config.watchdog.is_some() {
                    budget.min(Duration::from_millis(25))
                } else {
                    budget
                };
                match rx.recv_timeout(slice) {
                    Ok(m) => m,
                    Err(mpsc::RecvTimeoutError::Timeout) => {
                        let watchdog_tripped =
                            config.watchdog.as_ref().is_some_and(|w| w.poll().is_err());
                        let deadline_over = config
                            .time_limit
                            .is_some_and(|limit| started.elapsed() >= limit + grace);
                        if watchdog_tripped || deadline_over {
                            // Force-cancel and keep draining (deadline
                            // tokens may already be expired, so workers
                            // exit on their next poll either way).
                            for t in &tokens {
                                t.cancel();
                            }
                            cancel_started.get_or_insert_with(Instant::now);
                        }
                        continue;
                    }
                    Err(mpsc::RecvTimeoutError::Disconnected) => break,
                }
            } else {
                match rx.recv() {
                    Ok(m) => m,
                    Err(_) => break,
                }
            };
            pending -= 1;
            let (i, _elapsed, result) = message;
            outcomes[i] = Some(match result {
                Err(payload) => {
                    let message = panic_message(payload.as_ref());
                    // Land the panic in the flight recorder while the
                    // other workers' span stacks are still live.
                    mc_obs::telemetry::flight_event(
                        "portfolio.worker_panic",
                        &[
                            ("engine", Value::S(engines[i].name().to_string())),
                            ("message", Value::S(message.clone())),
                        ],
                    );
                    EngineOutcome::Panicked { message }
                }
                Ok(Err(cancelled)) => match cancelled.cause {
                    CancelCause::Explicit => EngineOutcome::Cancelled,
                    CancelCause::Deadline => EngineOutcome::TimedOut,
                },
                Ok(Ok((solution, certificate))) => {
                    if winner.is_some() {
                        EngineOutcome::Lost
                    } else {
                        match certificate.verify(data) {
                            Ok(()) => {
                                winner = Some((i, solution, certificate));
                                cancel_started = Some(Instant::now());
                                for (j, t) in tokens.iter().enumerate() {
                                    if j != i {
                                        t.cancel();
                                    }
                                }
                                EngineOutcome::Won
                            }
                            Err(reason) => {
                                mc_obs::warn_once(
                                    "portfolio_disqualified",
                                    "an engine's certificate failed the referee's audit; \
                                     racing on without it",
                                );
                                EngineOutcome::Disqualified { reason }
                            }
                        }
                    }
                }
            });
        }
        // All workers have exited (the scope would otherwise still hold
        // senders); latency spans cancel → last exit.
        cancel_latency = cancel_started.map(|t| t.elapsed());
    });

    let outcomes: Vec<(EngineSpec, EngineOutcome)> =
        engines
            .iter()
            .copied()
            .zip(outcomes.into_iter().map(|o| {
                o.expect("every worker sends exactly one message before the scope closes")
            }))
            .collect();
    if let Some(latency) = cancel_latency {
        mc_obs::gauge_set("portfolio.cancel_latency_ms", latency.as_secs_f64() * 1e3);
    }
    let mut engine_panics = 0usize;
    for (spec, outcome) in &outcomes {
        let (global, per_engine) = match outcome {
            EngineOutcome::Won => ("portfolio.wins", spec.wins_counter()),
            EngineOutcome::Lost => ("portfolio.losses", spec.losses_counter()),
            EngineOutcome::Disqualified { .. } => {
                ("portfolio.disqualified", spec.disqualified_counter())
            }
            EngineOutcome::Cancelled => ("portfolio.cancelled", spec.cancelled_counter()),
            EngineOutcome::TimedOut => ("portfolio.timeouts", spec.timeouts_counter()),
            EngineOutcome::Panicked { .. } => {
                engine_panics += 1;
                ("portfolio.panics", spec.panics_counter())
            }
        };
        mc_obs::counter_add(global, 1);
        mc_obs::counter_add(per_engine, 1);
        history.record(*spec, |t| match outcome {
            EngineOutcome::Won => t.wins += 1,
            EngineOutcome::Lost | EngineOutcome::Cancelled => t.losses += 1,
            EngineOutcome::Disqualified { .. } => t.disqualifications += 1,
            EngineOutcome::TimedOut => t.timeouts += 1,
            EngineOutcome::Panicked { .. } => t.panics += 1,
        });
    }
    let report = SolveReport {
        engine_panics,
        ..SolveReport::default()
    };

    if let Some((i, solution, certificate)) = winner {
        return Ok(PortfolioOutcome {
            solution,
            certificate,
            race: RaceReport {
                winner: Some(engines[i]),
                outcomes,
                fallback_used: false,
                cancel_latency,
            },
            report,
        });
    }

    // No verified answer. Either degrade gracefully onto the reference
    // engine, or surface the dominant failure as a typed error.
    let race_report = RaceReport {
        winner: None,
        outcomes,
        fallback_used: true,
        cancel_latency,
    };
    if config.fallback_on_timeout {
        mc_obs::counter_add("portfolio.fallbacks", 1);
        let (solution, certificate) = EngineSpec::AutoDinic
            .run(data, &CancelToken::never())
            .expect("a never-token cannot cancel");
        certificate
            .verify(data)
            .expect("the reference engine's certificate must audit clean");
        return Ok(PortfolioOutcome {
            solution,
            certificate,
            race: race_report,
            report,
        });
    }
    let timed_out = race_report
        .count(|o| matches!(o, EngineOutcome::TimedOut))
        .max(usize::from(config.time_limit.is_some()));
    Err(if timed_out > 0 {
        McError::Timeout
    } else {
        McError::Cancelled
    })
}

/// Best-effort panic payload rendering (strings are the common case).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
