//! The portfolio's engine roster.
//!
//! An [`EngineSpec`] names one complete passive pipeline — a max-flow
//! algorithm crossed with a network-building strategy — plus two
//! deliberately faulty injectors ([`Panic`](EngineSpec::Panic) and
//! [`Hang`](EngineSpec::Hang)) used by tests and CI to prove the race
//! coordinator isolates misbehaving engines. Every engine solves the
//! *same* instance and must justify its answer with a dual certificate;
//! they differ only in how fast they get there.

use mc_core::passive::{Certificate, NetworkStrategy, PassiveSolution, PassiveSolver};
use mc_flow::{Dinic, PushRelabel};
use mc_geom::WeightedSet;
use mc_obs::{CancelToken, Cancelled};

/// One runnable engine of the portfolio.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineSpec {
    /// Dinic over the dimension-dispatched default network (`d ≤ 2`
    /// sweep, `d ≥ 3` chain ladder). The certified reference engine the
    /// coordinator falls back to on total timeout.
    AutoDinic,
    /// Dinic over the forced chain ladder at any dimension.
    SparseDinic,
    /// Dinic over the paper-literal dense `Θ(n²)`-edge network.
    DenseDinic,
    /// FIFO push-relabel over the forced chain ladder.
    SparsePushRelabel,
    /// FIFO push-relabel over the dense network.
    DensePushRelabel,
    /// Dinic over the forced chain ladder, with the Lemma-6 chain
    /// decomposition computed by the banded shard engine
    /// (`mc_chains::shard`): per-band matchings on worker threads,
    /// stitched and repaired to the same width as the sequential
    /// engines. Shard count from `MC_SHARDS` (or its default).
    ShardHk,
    /// Fault injector: panics immediately. The coordinator must isolate
    /// it and keep racing.
    Panic,
    /// Fault injector: never produces an answer, but polls its token
    /// every millisecond — it exits only by cancellation or deadline.
    Hang,
}

/// Expands to `name()` plus one `&'static str` counter accessor per
/// outcome, since `mc_obs::counter_add` requires static names and the
/// roster is a closed set.
macro_rules! engine_names {
    ($($variant:ident => $name:literal),+ $(,)?) => {
        impl EngineSpec {
            /// The CLI/JSONL spelling of this engine.
            pub fn name(self) -> &'static str {
                match self { $(EngineSpec::$variant => $name),+ }
            }

            pub(crate) fn wins_counter(self) -> &'static str {
                match self {
                    $(EngineSpec::$variant =>
                        concat!("portfolio.engine.", $name, ".wins")),+
                }
            }

            pub(crate) fn losses_counter(self) -> &'static str {
                match self {
                    $(EngineSpec::$variant =>
                        concat!("portfolio.engine.", $name, ".losses")),+
                }
            }

            pub(crate) fn panics_counter(self) -> &'static str {
                match self {
                    $(EngineSpec::$variant =>
                        concat!("portfolio.engine.", $name, ".panics")),+
                }
            }

            pub(crate) fn timeouts_counter(self) -> &'static str {
                match self {
                    $(EngineSpec::$variant =>
                        concat!("portfolio.engine.", $name, ".timeouts")),+
                }
            }

            pub(crate) fn cancelled_counter(self) -> &'static str {
                match self {
                    $(EngineSpec::$variant =>
                        concat!("portfolio.engine.", $name, ".cancelled")),+
                }
            }

            pub(crate) fn disqualified_counter(self) -> &'static str {
                match self {
                    $(EngineSpec::$variant =>
                        concat!("portfolio.engine.", $name, ".disqualified")),+
                }
            }
        }
    };
}

engine_names! {
    AutoDinic => "auto-dinic",
    SparseDinic => "sparse-dinic",
    DenseDinic => "dense-dinic",
    SparsePushRelabel => "sparse-pr",
    DensePushRelabel => "dense-pr",
    ShardHk => "shard-hk",
    Panic => "panic",
    Hang => "hang",
}

impl EngineSpec {
    /// Every engine, in the roster's canonical order (real engines
    /// first, injectors last).
    pub const ALL: [EngineSpec; 8] = [
        EngineSpec::AutoDinic,
        EngineSpec::SparseDinic,
        EngineSpec::DenseDinic,
        EngineSpec::SparsePushRelabel,
        EngineSpec::DensePushRelabel,
        EngineSpec::ShardHk,
        EngineSpec::Panic,
        EngineSpec::Hang,
    ];

    /// Dense position of this engine in [`ALL`](Self::ALL), for tally
    /// tables.
    pub(crate) fn index(self) -> usize {
        Self::ALL
            .iter()
            .position(|&e| e == self)
            .expect("ALL lists every variant")
    }

    /// `true` for the deliberately faulty test engines.
    pub fn is_injected(self) -> bool {
        matches!(self, EngineSpec::Panic | EngineSpec::Hang)
    }

    /// Parses one engine name (the spellings of [`name`](Self::name),
    /// case-insensitive, plus the `auto`, `sparse-push-relabel` and
    /// `dense-push-relabel` aliases).
    pub fn parse(s: &str) -> Option<Self> {
        let s = s.trim();
        Self::ALL
            .into_iter()
            .find(|e| s.eq_ignore_ascii_case(e.name()))
            .or(match s.to_ascii_lowercase().as_str() {
                "auto" => Some(EngineSpec::AutoDinic),
                "sparse-push-relabel" => Some(EngineSpec::SparsePushRelabel),
                "dense-push-relabel" => Some(EngineSpec::DensePushRelabel),
                _ => None,
            })
    }

    /// Parses a comma-separated engine list, e.g.
    /// `"sparse-dinic,dense-pr"`. Rejects unknown names and empty
    /// lists with a human-readable message.
    pub fn parse_list(s: &str) -> Result<Vec<Self>, String> {
        let engines: Vec<Self> = s
            .split(',')
            .filter(|part| !part.trim().is_empty())
            .map(|part| {
                Self::parse(part).ok_or_else(|| {
                    format!(
                        "unknown engine {:?} (expected one of: {})",
                        part.trim(),
                        Self::ALL.map(Self::name).join(", ")
                    )
                })
            })
            .collect::<Result<_, _>>()?;
        if engines.is_empty() {
            return Err("engine list is empty".into());
        }
        Ok(engines)
    }

    /// Runs this engine to a certified answer, observing `token`
    /// cooperatively. The injectors do exactly what their names say:
    /// `Panic` dies (the coordinator's `catch_unwind` must contain it),
    /// `Hang` spins on the token until cancelled or expired.
    pub fn run(
        self,
        data: &WeightedSet,
        token: &CancelToken,
    ) -> Result<(PassiveSolution, Certificate), Cancelled> {
        let solver = |net| PassiveSolver::new().with_network(net);
        match self {
            EngineSpec::AutoDinic => {
                solver(NetworkStrategy::Auto).solve_certified_cancellable(data, token)
            }
            EngineSpec::SparseDinic => {
                solver(NetworkStrategy::Sparse).solve_certified_cancellable(data, token)
            }
            EngineSpec::DenseDinic => {
                solver(NetworkStrategy::Dense).solve_certified_cancellable(data, token)
            }
            EngineSpec::SparsePushRelabel => PassiveSolver::with_algorithm(PushRelabel)
                .with_network(NetworkStrategy::Sparse)
                .solve_certified_cancellable(data, token),
            EngineSpec::DensePushRelabel => PassiveSolver::with_algorithm(PushRelabel)
                .with_network(NetworkStrategy::Dense)
                .solve_certified_cancellable(data, token),
            EngineSpec::ShardHk => mc_chains::with_matching_override(
                mc_chains::MatchingEngine::Shard,
                None, // shard count from MC_SHARDS or its default
                || solver(NetworkStrategy::Sparse).solve_certified_cancellable(data, token),
            ),
            EngineSpec::Panic => panic!("injected fault: the panic engine always dies"),
            EngineSpec::Hang => loop {
                token.poll()?;
                std::thread::sleep(std::time::Duration::from_millis(1));
            },
        }
    }

    // Avoid an unused warning for Dinic: the closure above names the
    // default solver, which is Dinic-typed.
    #[allow(dead_code)]
    fn _assert_default_is_dinic(s: PassiveSolver<Dinic>) -> PassiveSolver<Dinic> {
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip_through_parse() {
        for e in EngineSpec::ALL {
            assert_eq!(EngineSpec::parse(e.name()), Some(e));
            assert_eq!(EngineSpec::parse(&e.name().to_uppercase()), Some(e));
        }
        assert_eq!(EngineSpec::parse("auto"), Some(EngineSpec::AutoDinic));
        assert_eq!(EngineSpec::parse("bogus"), None);
    }

    #[test]
    fn parse_list_handles_spaces_and_rejects_unknown() {
        assert_eq!(
            EngineSpec::parse_list("sparse-dinic, dense-pr").unwrap(),
            vec![EngineSpec::SparseDinic, EngineSpec::DensePushRelabel]
        );
        assert!(EngineSpec::parse_list("sparse-dinic,bogus")
            .unwrap_err()
            .contains("bogus"));
        assert!(EngineSpec::parse_list("").is_err());
    }

    #[test]
    fn counter_names_are_distinct_per_engine() {
        let mut names: Vec<&str> = EngineSpec::ALL
            .iter()
            .flat_map(|e| [e.wins_counter(), e.panics_counter(), e.cancelled_counter()])
            .collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), EngineSpec::ALL.len() * 3);
    }

    #[test]
    fn hang_engine_obeys_its_deadline() {
        use mc_obs::CancelCause;
        let mut ws = WeightedSet::empty(1);
        ws.push(&[0.0], mc_geom::Label::One, 1.0);
        let token = CancelToken::with_deadline(std::time::Duration::from_millis(5));
        let err = EngineSpec::Hang.run(&ws, &token).unwrap_err();
        assert_eq!(err.cause, CancelCause::Deadline);
    }
}
