//! In-process engine selection memory.
//!
//! Each race records one outcome per engine; [`History::rank`] then
//! orders future rosters by smoothed win rate, so a long-running
//! process (batch evaluation, a service) converges on starting its
//! empirically fastest engines first without any configuration. The
//! table is process-local and deliberately unpersisted — hardware and
//! instance mix change between runs, and a stale prior is worse than a
//! cold one.

use crate::engine::EngineSpec;
use std::sync::Mutex;

/// Per-engine outcome tallies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Tally {
    /// Races this engine won (first verified finisher).
    pub wins: u64,
    /// Races it finished or was cancelled in after another engine won.
    pub losses: u64,
    /// Times it panicked and was isolated.
    pub panics: u64,
    /// Times it hit the race deadline.
    pub timeouts: u64,
    /// Times its certificate failed the referee's audit.
    pub disqualifications: u64,
}

impl Tally {
    /// Races this engine participated in.
    pub fn runs(&self) -> u64 {
        self.wins + self.losses + self.panics + self.timeouts + self.disqualifications
    }
}

/// Win-rate table over the engine roster.
#[derive(Debug, Default)]
pub struct History {
    tallies: Mutex<[Tally; EngineSpec::ALL.len()]>,
}

static GLOBAL: History = History {
    tallies: Mutex::new(
        [Tally {
            wins: 0,
            losses: 0,
            panics: 0,
            timeouts: 0,
            disqualifications: 0,
        }; EngineSpec::ALL.len()],
    ),
};

impl History {
    /// The process-wide table every [`race`](crate::race::race)
    /// records into.
    pub fn global() -> &'static History {
        &GLOBAL
    }

    /// A fresh, empty table (tests; isolated schedulers).
    pub fn new() -> Self {
        Self::default()
    }

    /// Current tallies for `engine`.
    pub fn tally(&self, engine: EngineSpec) -> Tally {
        self.tallies.lock().expect("history lock")[engine.index()]
    }

    /// Smoothed win rate in `(0, 1)`: `(wins + 1) / (runs + 2)`
    /// (Laplace), so unseen engines score 0.5 and one early loss does
    /// not bury an engine forever. Panics and disqualifications count
    /// as (lost) runs, which steadily sinks chronically faulty engines.
    pub fn score(&self, engine: EngineSpec) -> f64 {
        let t = self.tally(engine);
        (t.wins + 1) as f64 / (t.runs() + 2) as f64
    }

    /// Stable-sorts `engines` by descending score: the configured order
    /// breaks ties, so a fresh process keeps the caller's roster order.
    pub fn rank(&self, engines: &mut [EngineSpec]) {
        engines.sort_by(|&a, &b| {
            self.score(b)
                .partial_cmp(&self.score(a))
                .expect("scores are finite")
        });
    }

    /// Clears every tally.
    pub fn reset(&self) {
        *self.tallies.lock().expect("history lock") = Default::default();
    }

    pub(crate) fn record(&self, engine: EngineSpec, f: impl FnOnce(&mut Tally)) {
        f(&mut self.tallies.lock().expect("history lock")[engine.index()]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unseen_engines_score_half_and_keep_roster_order() {
        let h = History::new();
        let mut roster = vec![
            EngineSpec::DensePushRelabel,
            EngineSpec::AutoDinic,
            EngineSpec::SparseDinic,
        ];
        let original = roster.clone();
        h.rank(&mut roster);
        assert_eq!(roster, original, "ties must preserve the caller's order");
        assert_eq!(h.score(EngineSpec::AutoDinic), 0.5);
    }

    #[test]
    fn winners_rise_and_panickers_sink() {
        let h = History::new();
        for _ in 0..5 {
            h.record(EngineSpec::DenseDinic, |t| t.wins += 1);
            h.record(EngineSpec::SparseDinic, |t| t.losses += 1);
            h.record(EngineSpec::DensePushRelabel, |t| t.panics += 1);
        }
        // One win keeps the chronic loser strictly above the chronic
        // panicker (they otherwise tie at the same smoothed rate).
        h.record(EngineSpec::SparseDinic, |t| t.wins += 1);
        let mut roster = vec![
            EngineSpec::DensePushRelabel,
            EngineSpec::SparseDinic,
            EngineSpec::DenseDinic,
        ];
        h.rank(&mut roster);
        assert_eq!(
            roster,
            vec![
                EngineSpec::DenseDinic,
                EngineSpec::SparseDinic,
                EngineSpec::DensePushRelabel,
            ]
        );
        assert!(h.score(EngineSpec::DenseDinic) > 0.5);
        assert!(h.score(EngineSpec::DensePushRelabel) < 0.5);
        h.reset();
        assert_eq!(h.tally(EngineSpec::DenseDinic), Tally::default());
    }
}
