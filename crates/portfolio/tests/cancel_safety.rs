//! S4: cancellation leaves no poisoned shared state.
//!
//! A solve cancelled at an arbitrary checkpoint abandons heaps of
//! partially-filled scratch (dominance-index bit rows, flow levels,
//! ladder rungs) — all of which must be *local* to the cancelled solve.
//! These properties cancel solves mid-flight at seed-derived delays over
//! the same `Arc`'d inputs, then re-solve on those inputs with a live
//! token and demand answers bit-identical to an undisturbed baseline.

use mc_core::passive::{NetworkStrategy, PassiveSolution, PassiveSolver};
use mc_geom::{Label, WeightedSet};
use mc_obs::CancelToken;
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn build(rows: &[(u8, u8, u8, bool, u8)]) -> WeightedSet {
    let mut ws = WeightedSet::empty(3);
    for &(c0, c1, c2, label, weight) in rows {
        ws.push(
            &[c0 as f64, c1 as f64, c2 as f64],
            Label::from_bool(label),
            weight as f64,
        );
    }
    ws
}

fn assert_bit_identical(a: &PassiveSolution, b: &PassiveSolution) {
    assert_eq!(a.assignment, b.assignment);
    assert_eq!(a.classifier, b.classifier);
    assert_eq!(a.weighted_error.to_bits(), b.weighted_error.to_bits());
    assert_eq!(a.contending, b.contending);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Cancelling a solve at a random point in its lifetime, from a
    /// rival thread, never corrupts a subsequent solve over the same
    /// shared inputs.
    #[test]
    fn cancelled_solves_leave_no_poisoned_state(
        rows in prop::collection::vec(
            (0u8..8, 0u8..8, 0u8..8, prop::bool::ANY, 1u8..10),
            50..200,
        ),
        delay_us in 0u64..400,
        strategy_sparse in prop::bool::ANY,
    ) {
        let data = Arc::new(build(&rows));
        let strategy = if strategy_sparse {
            NetworkStrategy::Sparse
        } else {
            NetworkStrategy::Auto
        };
        let baseline = PassiveSolver::new().with_network(strategy).solve(&data);

        // Race a cancel against the solve at a seed-derived delay: the
        // token may trip before the solve starts, mid-build, mid-flow,
        // or after it finished — every interleaving must be benign.
        let token = CancelToken::new();
        let solver_data = Arc::clone(&data);
        let solver_token = token.clone();
        let handle = std::thread::spawn(move || {
            PassiveSolver::new()
                .with_network(strategy)
                .solve_cancellable(&solver_data, &solver_token)
        });
        std::thread::sleep(Duration::from_micros(delay_us));
        token.cancel();
        let raced = handle.join().expect("cancellation must not panic");

        // If the solve outran the cancel, even its answer is identical.
        if let Ok(sol) = raced {
            assert_bit_identical(&sol, &baseline);
        }

        // The shared inputs are untouched: two fresh solves (one
        // uncertified, one certified) reproduce the baseline bit for bit.
        let after = PassiveSolver::new()
            .with_network(strategy)
            .solve_cancellable(&data, &CancelToken::never())
            .expect("a never-token cannot cancel");
        assert_bit_identical(&after, &baseline);
        let (certified, cert) = PassiveSolver::new()
            .with_network(strategy)
            .solve_certified_cancellable(&data, &CancelToken::never())
            .expect("a never-token cannot cancel");
        assert_bit_identical(&certified, &baseline);
        cert.verify(&data).expect("certificate audits clean");
    }
}
