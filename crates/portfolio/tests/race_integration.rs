//! Integration tests of the race coordinator: faulty-engine isolation,
//! bit-identical answers versus solo solves, deadline fallback, counter
//! reconciliation, and cancellation latency.

use mc_core::passive::{NetworkStrategy, PassiveSolver};
use mc_core::McError;
use mc_geom::{Label, WeightedSet};
use mc_portfolio::{race, EngineOutcome, EngineSpec, PortfolioConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;

/// Races record into the process-global mc-obs registry and History, so
/// every test here serializes on one lock (the harness runs tests in
/// parallel within this binary).
fn obs_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// A seeded instance with plenty of inversions at dimension `d`.
fn noisy_set(n: usize, d: usize, seed: u64) -> WeightedSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ws = WeightedSet::empty(d);
    let mut coords = vec![0.0f64; d];
    for _ in 0..n {
        let mut sum = 0.0;
        for c in coords.iter_mut() {
            *c = rng.gen_range(0.0..10.0);
            sum += *c;
        }
        // Threshold labeling with ~20% flips keeps the flow non-trivial.
        let clean = sum >= 5.0 * d as f64;
        let label = clean != rng.gen_bool(0.2);
        ws.push(&coords, Label::from_bool(label), rng.gen_range(1.0..4.0));
    }
    ws
}

fn outcome_of(report: &mc_portfolio::RaceReport, spec: EngineSpec) -> EngineOutcome {
    report
        .outcomes
        .iter()
        .find(|(e, _)| *e == spec)
        .map(|(_, o)| o.clone())
        .expect("engine raced")
}

#[test]
fn racing_with_injected_faults_is_bit_identical_to_solo() {
    let _l = obs_lock();
    let data = noisy_set(400, 3, 7);
    let solo = PassiveSolver::new()
        .with_network(NetworkStrategy::Sparse)
        .solve(&data);

    let config = PortfolioConfig::new(vec![
        EngineSpec::Panic,
        EngineSpec::Hang,
        EngineSpec::SparseDinic,
    ]);
    let out = race(&data, &config).expect("the real engine must win");

    // Bit-identical to the solo solve: same classifier, same per-point
    // assignment, same error down to the last bit.
    assert_eq!(out.race.winner, Some(EngineSpec::SparseDinic));
    assert!(!out.race.fallback_used);
    assert_eq!(out.solution.assignment, solo.assignment);
    assert_eq!(out.solution.classifier, solo.classifier);
    assert_eq!(
        out.solution.weighted_error.to_bits(),
        solo.weighted_error.to_bits()
    );
    assert_eq!(out.solution.contending, solo.contending);
    out.certificate.verify(&data).expect("referee-audited");

    // Both injected faults were observed and isolated.
    assert!(matches!(
        outcome_of(&out.race, EngineSpec::Panic),
        EngineOutcome::Panicked { .. }
    ));
    assert_eq!(
        outcome_of(&out.race, EngineSpec::Hang),
        EngineOutcome::Cancelled
    );
    assert_eq!(out.report.engine_panics, 1);
    assert!(!out.report.is_clean(), "a panic taints cleanliness");
    assert!(!out.report.degraded, "a panic never corrupts the answer");
}

#[test]
fn total_timeout_falls_back_to_certified_reference() {
    let _l = obs_lock();
    let data = noisy_set(120, 2, 11);
    let reference = PassiveSolver::new().solve(&data);

    let config = PortfolioConfig::new(vec![EngineSpec::Hang, EngineSpec::Panic])
        .with_time_limit(Duration::from_millis(30));
    let out = race(&data, &config).expect("fallback must answer");

    assert!(out.race.fallback_used);
    assert_eq!(out.race.winner, None);
    assert_eq!(
        outcome_of(&out.race, EngineSpec::Hang),
        EngineOutcome::TimedOut
    );
    assert_eq!(
        out.solution.weighted_error.to_bits(),
        reference.weighted_error.to_bits()
    );
    assert_eq!(out.solution.assignment, reference.assignment);
    out.certificate
        .verify(&data)
        .expect("fallback is certified");
}

#[test]
fn total_timeout_without_fallback_is_a_typed_error() {
    let _l = obs_lock();
    let data = noisy_set(60, 2, 13);
    let config = PortfolioConfig::new(vec![EngineSpec::Hang])
        .with_time_limit(Duration::from_millis(20))
        .without_fallback();
    match race(&data, &config) {
        Err(McError::Timeout) => {}
        other => panic!("expected McError::Timeout, got {other:?}"),
    }
}

#[test]
fn empty_roster_is_rejected() {
    let _l = obs_lock();
    let data = noisy_set(10, 1, 17);
    match race(&data, &PortfolioConfig::new(Vec::new())) {
        Err(McError::InvalidParameter { .. }) => {}
        other => panic!("expected InvalidParameter, got {other:?}"),
    }
}

#[test]
fn portfolio_counters_reconcile_with_race_report() {
    let _l = obs_lock();
    let prev = mc_obs::level();
    mc_obs::set_level(mc_obs::Level::Info);
    mc_obs::reset();

    let data = noisy_set(250, 2, 19);
    let config = PortfolioConfig::new(vec![
        EngineSpec::Panic,
        EngineSpec::Hang,
        EngineSpec::AutoDinic,
    ]);
    let out = race(&data, &config).expect("real engine wins");

    let s = mc_obs::snapshot();
    assert_eq!(s.counter("portfolio.races"), 1);
    assert_eq!(s.counter("portfolio.wins"), 1);
    assert_eq!(
        s.counter("portfolio.panics"),
        out.report.engine_panics as u64
    );
    assert_eq!(s.counter("portfolio.panics"), 1);
    assert_eq!(s.counter("portfolio.cancelled"), 1);
    assert_eq!(s.counter("portfolio.timeouts"), 0);
    assert_eq!(s.counter("portfolio.fallbacks"), 0);
    // Per-engine counters agree with the per-engine outcomes.
    assert_eq!(s.counter("portfolio.engine.auto-dinic.wins"), 1);
    assert_eq!(s.counter("portfolio.engine.panic.panics"), 1);
    assert_eq!(s.counter("portfolio.engine.hang.cancelled"), 1);
    // The outcome tally covers the whole roster exactly once.
    let booked = s.counter("portfolio.wins")
        + s.counter("portfolio.losses")
        + s.counter("portfolio.panics")
        + s.counter("portfolio.cancelled")
        + s.counter("portfolio.timeouts")
        + s.counter("portfolio.disqualified");
    assert_eq!(booked as usize, out.race.outcomes.len());

    mc_obs::set_level(prev);
}

#[test]
fn cancellation_latency_stays_under_50ms_at_n20k() {
    let _l = obs_lock();
    let prev = mc_obs::level();
    mc_obs::set_level(mc_obs::Level::Info);
    mc_obs::reset();

    // A real solve at n = 20k races the hang injector: once the real
    // engine wins, the injector (polling every 1 ms) must be observed
    // to exit well under the 50 ms budget.
    let data = noisy_set(20_000, 2, 23);
    let config = PortfolioConfig::new(vec![EngineSpec::AutoDinic, EngineSpec::Hang]);
    let out = race(&data, &config).expect("real engine wins");

    assert_eq!(out.race.winner, Some(EngineSpec::AutoDinic));
    let latency = out
        .race
        .cancel_latency
        .expect("a cancelled loser implies a measured latency");
    assert!(
        latency < Duration::from_millis(50),
        "cancellation took {latency:?}"
    );
    let gauge = mc_obs::snapshot()
        .gauges
        .iter()
        .find(|(n, _)| n == "portfolio.cancel_latency_ms")
        .map(|(_, v)| *v)
        .expect("latency gauge exported");
    assert!(gauge < 50.0, "gauge reads {gauge} ms");

    mc_obs::set_level(prev);
}

#[test]
fn history_learns_across_races_in_one_process() {
    let _l = obs_lock();
    let history = mc_portfolio::History::global();
    history.reset();

    let data = noisy_set(150, 2, 29);
    let config = PortfolioConfig::new(vec![EngineSpec::Panic, EngineSpec::SparseDinic]);
    for _ in 0..3 {
        race(&data, &config).expect("real engine wins");
    }
    assert!(history.score(EngineSpec::SparseDinic) > history.score(EngineSpec::Panic));
    let mut roster = vec![EngineSpec::Panic, EngineSpec::SparseDinic];
    history.rank(&mut roster);
    assert_eq!(roster[0], EngineSpec::SparseDinic);
    history.reset();
}

#[test]
fn shard_hk_engine_races_and_matches_the_reference() {
    let _l = obs_lock();
    // d = 3 forces the chain-ladder network, whose Lemma-6 chain
    // decomposition is exactly what the shard-hk entry reroutes through
    // the banded engine. The answer must be bit-identical.
    let data = noisy_set(300, 3, 41);
    let solo = PassiveSolver::new()
        .with_network(NetworkStrategy::Sparse)
        .solve(&data);

    let config = PortfolioConfig::new(vec![EngineSpec::ShardHk]);
    let out = race(&data, &config).expect("shard-hk must win a solo race");
    assert_eq!(out.race.winner, Some(EngineSpec::ShardHk));
    assert_eq!(out.solution.assignment, solo.assignment);
    assert_eq!(
        out.solution.weighted_error.to_bits(),
        solo.weighted_error.to_bits()
    );
    out.certificate.verify(&data).expect("referee-audited");
    assert!(out.report.is_clean());
}
