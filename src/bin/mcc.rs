//! `mcc` — monotone classification on CSV files.
//!
//! ```text
//! mcc passive <data.csv> [--weighted] [--net auto|dense|sparse] [--out classifier.csv]
//! mcc active  <data.csv> [--epsilon E] [--seed S] [--out classifier.csv]
//! mcc eval    <data.csv> <classifier.csv>
//! mcc stats   <data.csv>
//! ```
//!
//! Data format: one row per point, `d` numeric feature columns followed
//! by a 0/1 label column (plus a positive weight column with
//! `--weighted`). A non-numeric header row is skipped. Classifiers are
//! stored as anchor rows (`d` columns; `h(x) = 1` iff `x` dominates an
//! anchor).
//!
//! ## Exit codes
//!
//! Failures map to distinct exit codes so scripts can branch on *why*
//! a run failed without parsing stderr:
//!
//! | code | class | examples |
//! |------|-------|----------|
//! | 0 | success | |
//! | 2 | usage | unknown command, unknown flag, missing argument |
//! | 3 | I/O | unreadable input, unwritable output |
//! | 4 | data | malformed CSV, non-finite feature, bad label |
//! | 5 | parameter | `--epsilon 1.5`, `--folds 1`, rates outside [0, 1] |
//! | 6 | oracle | oracle/input size mismatch, unrecoverable oracle failure |
//! | 7 | timeout | `--time-limit` exceeded with `--no-fallback`, solve cancelled |
//! | 8 | budget | a dense dominator matrix would exceed `MC_MATRIX_BUDGET_BYTES` |
//!
//! ## Columnar datasets
//!
//! `mcc passive` also accepts `MCC1` columnar files (extension `.mcc`,
//! written by `mcc generate scale`). These stream through the
//! matrix-free rank-oracle pipeline — `O(d·n)` resident, no `Θ(n²)`
//! structure — which is what carries the `n = 10⁷` solves; the output
//! is the optimal weighted error and flip counts rather than a
//! classifier file (the coordinates are never all resident, so there is
//! nothing to anchor one on).

use monotone_classification::bench::serve_load;
use monotone_classification::chains::{
    with_matching_override, AntichainPartition, ChainDecomposition, MatchingEngine,
};
use monotone_classification::core::metrics::ConfusionMatrix;
use monotone_classification::core::passive::{
    solve_passive, ContendingPoints, NetworkStrategy, PassiveSolver,
};
use monotone_classification::core::{ActiveParams, ActiveSolver, InMemoryOracle};
use monotone_classification::data::csv;
use monotone_classification::obs;
use monotone_classification::obs::json::Value;
use monotone_classification::portfolio::{race, EngineOutcome, EngineSpec, PortfolioConfig};
use monotone_classification::serve::{self, ServeConfig};
use monotone_classification::{
    AbstainingOracle, AnchorIndex, FallibleOracle, FlakyOracle, InfallibleAdapter, Label, McError,
    MonotoneClassifier, OracleError, RetryOracle, RetryPolicy,
};
use std::process::ExitCode;

/// A CLI failure, classified for its exit code.
#[derive(Debug)]
enum CliError {
    /// Bad invocation: unknown command/flag, missing argument. Exit 2.
    Usage(String),
    /// Filesystem trouble reading or writing. Exit 3.
    Io(String),
    /// The input parsed but is not valid data. Exit 4.
    Data(String),
    /// A flag value is out of range or unparsable. Exit 5.
    Param(String),
    /// The oracle could not serve the solve. Exit 6.
    Oracle(String),
    /// The solve ran out of time (or was cancelled) and no fallback was
    /// allowed. Exit 7.
    Timeout(String),
    /// A memory-budget refusal: the requested path would build a
    /// dominator matrix over `MC_MATRIX_BUDGET_BYTES`. Exit 8 — distinct
    /// from data errors so scripts can fall back to the matrix-free
    /// path instead of rejecting the input.
    Budget(String),
}

impl CliError {
    fn exit_code(&self) -> u8 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Io(_) => 3,
            CliError::Data(_) => 4,
            CliError::Param(_) => 5,
            CliError::Oracle(_) => 6,
            CliError::Timeout(_) => 7,
            CliError::Budget(_) => 8,
        }
    }

    fn message(&self) -> &str {
        match self {
            CliError::Usage(m)
            | CliError::Io(m)
            | CliError::Data(m)
            | CliError::Param(m)
            | CliError::Oracle(m)
            | CliError::Timeout(m)
            | CliError::Budget(m) => m,
        }
    }

    /// Short class name, stamped into error-path metrics and used as
    /// the flight-recorder dump reason.
    fn class(&self) -> &'static str {
        match self {
            CliError::Usage(_) => "usage",
            CliError::Io(_) => "io",
            CliError::Data(_) => "data",
            CliError::Param(_) => "param",
            CliError::Oracle(_) => "oracle",
            CliError::Timeout(_) => "timeout",
            CliError::Budget(_) => "budget",
        }
    }
}

impl From<McError> for CliError {
    fn from(e: McError) -> Self {
        match e {
            McError::Geom(_) => CliError::Data(e.to_string()),
            McError::InvalidParameter { .. } => CliError::Param(e.to_string()),
            McError::Oracle(_) | McError::OracleSizeMismatch { .. } => {
                CliError::Oracle(e.to_string())
            }
            McError::Timeout | McError::Cancelled => CliError::Timeout(e.to_string()),
            McError::Budget { .. } => CliError::Budget(e.to_string()),
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(error) => {
            eprintln!("error: {}", error.message());
            if matches!(error, CliError::Usage(_)) {
                eprintln!();
                eprintln!("{USAGE}");
            }
            ExitCode::from(error.exit_code())
        }
    }
}

const USAGE: &str = "usage:
  mcc passive  <data.csv> [--weighted] [--out classifier.csv]
               [--net auto|dense|sparse] [--shards N] [--trace]
               [--metrics-out metrics.jsonl]
               [--telemetry ts.jsonl] [--sample-ms MS] [--stall-window-ms MS]
               [--watch-abort]
               [--portfolio] [--engines e1,e2,...] [--time-limit SECS] [--no-fallback]
               engines: auto-dinic | sparse-dinic | dense-dinic | sparse-pr
                        | dense-pr | shard-hk | panic | hang
               (MC_PORTFOLIO env also accepted)
  mcc passive  <data.mcc> [--shards N] [--trace] [--metrics-out metrics.jsonl]
               [--time-limit SECS]
               [--telemetry ts.jsonl] [--sample-ms MS] [--stall-window-ms MS]
               [--watch-abort]
               columnar MCC1 input: streams the matrix-free solve, prints
               error and flip counts (no classifier output at scale)
  mcc active   <data.csv> [--epsilon E] [--seed S] [--out classifier.csv]
               [--flaky-rate P] [--abstain-rate P] [--retry-attempts N]
               [--fault-seed S] [--trace] [--metrics-out metrics.jsonl]
  mcc eval     <data.csv> <classifier.csv>
  mcc stats    <data.csv>
  mcc crossval <data.csv> [--folds K] [--seed S]
  mcc certify  <data.csv> [--weighted]
  mcc generate <family> <out.csv> [--n N] [--noise P] [--seed S]
               families: planted | entity-matching | hard-family | width-W
  mcc generate scale <out.mcc> [--n N] [--dim D] [--seed S]
               columnar MCC1 banded scale workload (streamed; any N)
  mcc classify <model.csv> <points.csv> [--out labels.csv]
               batch-classifies through the anchor index; one 0/1 label
               per row on stdout (or --out)
  mcc serve    <model.csv> [--addr HOST:PORT] [--trace]
               [--metrics-out metrics.jsonl]
               [--telemetry ts.jsonl] [--sample-ms MS] [--stall-window-ms MS]
               TCP server, length-prefixed JSON frames; ops: classify |
               reload (atomic hot-swap) | metrics | ping | shutdown
  mcc bench-serve [--addr HOST:PORT | --model model.csv] [--duration SECS]
               [--connections N] [--pipeline DEPTH] [--batches 1,16,256]
               [--dim D] [--anchors A] [--seed S]
               [--json-out BENCH_serve.json]
               load-generates against a serve endpoint (default:
               self-hosts a synthetic model) and reports qps + latency";

fn run(args: &[String]) -> Result<(), CliError> {
    let command = args
        .first()
        .ok_or_else(|| CliError::Usage("missing command".into()))?;
    match command.as_str() {
        "passive" => cmd_passive(&args[1..]),
        "active" => cmd_active(&args[1..]),
        "eval" => cmd_eval(&args[1..]),
        "stats" => cmd_stats(&args[1..]),
        "crossval" => cmd_crossval(&args[1..]),
        "certify" => cmd_certify(&args[1..]),
        "generate" => cmd_generate(&args[1..]),
        "classify" => cmd_classify(&args[1..]),
        "serve" => cmd_serve(&args[1..]),
        "bench-serve" => cmd_bench_serve(&args[1..]),
        other => Err(CliError::Usage(format!("unknown command {other:?}"))),
    }
}

/// Extracts `--flag value` pairs and bare flags, returning positionals.
#[allow(clippy::type_complexity)] // (positionals, --flag values, bare flags)
fn parse_flags(
    args: &[String],
    valued: &[&str],
    bare: &[&str],
) -> Result<(Vec<String>, Vec<(String, String)>, Vec<String>), CliError> {
    let mut positional = Vec::new();
    let mut values = Vec::new();
    let mut flags = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if let Some(name) = a.strip_prefix("--") {
            if bare.contains(&name) {
                flags.push(name.to_string());
            } else if valued.contains(&name) {
                i += 1;
                let v = args
                    .get(i)
                    .ok_or_else(|| CliError::Usage(format!("--{name} requires a value")))?;
                values.push((name.to_string(), v.clone()));
            } else {
                return Err(CliError::Usage(format!("unknown flag --{name}")));
            }
        } else {
            positional.push(a.clone());
        }
        i += 1;
    }
    Ok((positional, values, flags))
}

fn get_value(values: &[(String, String)], name: &str) -> Option<String> {
    values
        .iter()
        .rev()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v.clone())
}

/// Parses `--name value` as a number, or returns `default` when absent.
fn parse_num<T: std::str::FromStr>(
    values: &[(String, String)],
    name: &str,
    default: T,
) -> Result<T, CliError> {
    get_value(values, name)
        .map(|v| {
            v.parse()
                .map_err(|_| CliError::Param(format!("bad --{name} {v:?}")))
        })
        .transpose()
        .map(|o| o.unwrap_or(default))
}

fn read_file(path: &str) -> Result<String, CliError> {
    std::fs::read_to_string(path).map_err(|e| CliError::Io(format!("cannot read {path}: {e}")))
}

fn write_file(path: &str, contents: &str) -> Result<(), CliError> {
    std::fs::write(path, contents).map_err(|e| CliError::Io(format!("cannot write {path}: {e}")))
}

fn parse_data(text: &str) -> Result<monotone_classification::LabeledSet, CliError> {
    csv::parse_labeled(text).map_err(|e| CliError::Data(e.to_string()))
}

/// Parsed `--telemetry` flag family (live `mc-obs/ts1` sampling).
struct TelemetryCli {
    path: String,
    sample_ms: u64,
    stall_window_ms: u64,
    watch_abort: bool,
}

/// Observability surface shared by the solve commands: `--trace` prints
/// the phase tree to stderr after the run, `--metrics-out <path>.jsonl`
/// writes the machine-readable stream, and `--telemetry <path>.jsonl`
/// streams live `mc-obs/ts1` samples while the solve runs (cadence
/// `--sample-ms`, stall watchdog window `--stall-window-ms`, with
/// `--watch-abort` letting the watchdog cancel a stalled solve). Any of
/// the flags turns collection on (without lowering an explicit
/// `MC_LOG=debug`/`trace`).
///
/// The sinks flush on *every* exit: success through
/// [`finish`](Self::finish), failures through [`fail`](Self::fail) —
/// which also appends a flight-recorder dump to the telemetry stream,
/// so a timeout or budget refusal leaves an autopsy record instead of
/// discarding the run's metrics.
struct ObsOutput {
    trace: bool,
    metrics_out: Option<String>,
    telemetry: Option<TelemetryCli>,
    /// Set once a flush ran, so an error unwinding out of a failed
    /// `finish` does not flush the sinks a second time via `fail`.
    finished: std::cell::Cell<bool>,
}

impl ObsOutput {
    fn from_cli(values: &[(String, String)], flags: &[String]) -> Result<Self, CliError> {
        let watch_abort = flags.iter().any(|f| f == "watch-abort");
        let telemetry = match get_value(values, "telemetry") {
            Some(path) => {
                let sample_ms: u64 = parse_num(values, "sample-ms", 100)?;
                let stall_window_ms: u64 = parse_num(values, "stall-window-ms", 10_000)?;
                if sample_ms == 0 {
                    return Err(CliError::Param("--sample-ms must be positive".into()));
                }
                if stall_window_ms == 0 {
                    return Err(CliError::Param("--stall-window-ms must be positive".into()));
                }
                Some(TelemetryCli {
                    path,
                    sample_ms,
                    stall_window_ms,
                    watch_abort,
                })
            }
            None => {
                for name in ["sample-ms", "stall-window-ms"] {
                    if get_value(values, name).is_some() {
                        return Err(CliError::Usage(format!("--{name} requires --telemetry")));
                    }
                }
                if watch_abort {
                    return Err(CliError::Usage("--watch-abort requires --telemetry".into()));
                }
                None
            }
        };
        let out = Self {
            trace: flags.iter().any(|f| f == "trace"),
            metrics_out: get_value(values, "metrics-out"),
            telemetry,
            finished: std::cell::Cell::new(false),
        };
        if (out.trace || out.metrics_out.is_some() || out.telemetry.is_some())
            && obs::level() < obs::Level::Info
        {
            obs::set_level(obs::Level::Info);
        }
        Ok(out)
    }

    /// Whether `--watch-abort` asked the stall watchdog to cancel the
    /// solve (implies `--telemetry`).
    fn watch_abort(&self) -> bool {
        self.telemetry.as_ref().is_some_and(|t| t.watch_abort)
    }

    /// Starts the background sampler when `--telemetry` was given.
    /// `abort` is the token the stall watchdog cancels under
    /// `--watch-abort` — pass the solve's own token so a detected stall
    /// unwinds the run cooperatively (exit 7).
    fn start_telemetry(
        &self,
        abort: Option<obs::CancelToken>,
        meta: &[(&str, Value)],
    ) -> Result<(), CliError> {
        let Some(t) = &self.telemetry else {
            return Ok(());
        };
        let mut config = obs::telemetry::SamplerConfig::new(&t.path);
        config.interval = std::time::Duration::from_millis(t.sample_ms);
        config.stall_window = Some(std::time::Duration::from_millis(t.stall_window_ms));
        if t.watch_abort {
            config.abort = abort;
        }
        config.meta = meta
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect();
        obs::telemetry::start(config)
            .map_err(|e| CliError::Io(format!("cannot write {}: {e}", t.path)))?;
        Ok(())
    }

    /// Success-path flush: stops the sampler (final sample + flush) and
    /// emits the configured sinks. `extra_meta` is stamped into the
    /// JSONL `meta` line; `extra_lines` (e.g. the solver's
    /// `SolveReport::to_json`) are appended after the snapshot.
    fn finish(&self, extra_meta: &[(&str, Value)], extra_lines: &[String]) -> Result<(), CliError> {
        self.finished.set(true);
        obs::telemetry::stop();
        self.flush_sinks(extra_meta, extra_lines)
    }

    /// Error-path flush: appends a flight-recorder dump (reason = the
    /// error class) to the telemetry stream, stops the sampler, and
    /// best-effort writes the sinks with the error stamped into the
    /// meta line — so `--trace`/`--metrics-out` survive exits 2–8.
    /// Returns the error unchanged for `map_err` chaining.
    fn fail(&self, e: CliError) -> CliError {
        if self.finished.replace(true) {
            return e;
        }
        obs::telemetry::dump(e.class());
        obs::telemetry::stop();
        let _ = self.flush_sinks(
            &[
                ("error", Value::S(e.message().to_string())),
                ("error_class", Value::S(e.class().to_string())),
                ("exit_code", Value::U(u64::from(e.exit_code()))),
            ],
            &[],
        );
        e
    }

    fn flush_sinks(
        &self,
        extra_meta: &[(&str, Value)],
        extra_lines: &[String],
    ) -> Result<(), CliError> {
        if !self.trace && self.metrics_out.is_none() {
            return Ok(());
        }
        let snap = obs::snapshot();
        if self.trace {
            eprint!("{}", obs::sink::render_phase_tree(&snap));
        }
        if let Some(path) = &self.metrics_out {
            let mut meta: Vec<(&str, Value)> = vec![
                (
                    "mc_par_threshold",
                    Value::U(monotone_classification::geom::parallel_threshold() as u64),
                ),
                (
                    "mc_threads",
                    Value::U(monotone_classification::geom::max_threads() as u64),
                ),
            ];
            meta.extend(extra_meta.iter().cloned());
            let mut file = std::fs::File::create(path)
                .map_err(|e| CliError::Io(format!("cannot write {path}: {e}")))?;
            obs::sink::write_jsonl(&mut file, &snap, &meta)
                .map_err(|e| CliError::Io(format!("cannot write {path}: {e}")))?;
            use std::io::Write as _;
            for line in extra_lines {
                writeln!(file, "{line}")
                    .map_err(|e| CliError::Io(format!("cannot write {path}: {e}")))?;
            }
            eprintln!("wrote metrics to {path}");
        }
        Ok(())
    }
}

fn cmd_passive(args: &[String]) -> Result<(), CliError> {
    let (pos, values, flags) = parse_flags(
        args,
        &[
            "out",
            "metrics-out",
            "net",
            "engines",
            "time-limit",
            "shards",
            "telemetry",
            "sample-ms",
            "stall-window-ms",
        ],
        &[
            "weighted",
            "trace",
            "portfolio",
            "no-fallback",
            "watch-abort",
        ],
    )?;
    let obs_out = ObsOutput::from_cli(&values, &flags)?;
    cmd_passive_impl(&pos, &values, &flags, &obs_out).map_err(|e| obs_out.fail(e))
}

fn cmd_passive_impl(
    pos: &[String],
    values: &[(String, String)],
    flags: &[String],
    obs_out: &ObsOutput,
) -> Result<(), CliError> {
    let path = pos
        .first()
        .ok_or_else(|| CliError::Usage("passive: missing <data.csv>".into()))?;
    // --net overrides the MC_FLOW_NET env toggle; unset defers to it.
    let network = match get_value(values, "net") {
        Some(v) => NetworkStrategy::parse(&v).ok_or_else(|| {
            CliError::Param(format!("--net: expected auto, dense or sparse, got {v:?}"))
        })?,
        None => NetworkStrategy::Auto,
    };
    // --shards routes the Lemma-6 chain decomposition through the
    // banded shard engine, like MC_MATCHING=shard MC_SHARDS=N but
    // scoped to this solve (thread-local override, no env mutation).
    let shards = match get_value(values, "shards") {
        Some(v) => Some(v.parse::<usize>().ok().filter(|&s| s >= 1).ok_or_else(|| {
            CliError::Param(format!("--shards: expected a positive integer, got {v:?}"))
        })?),
        None => None,
    };
    if path.ends_with(".mcc") {
        return cmd_passive_columnar(path, values, flags, obs_out, network, shards);
    }
    let text = read_file(path)?;
    let weighted = if flags.contains(&"weighted".to_string()) {
        csv::parse_weighted(&text).map_err(|e| CliError::Data(e.to_string()))?
    } else {
        parse_data(&text)?.with_unit_weights()
    };
    // Portfolio mode: engine racing with cooperative cancellation (see
    // mc-portfolio). Enabled by --portfolio / --engines on the CLI or
    // the MC_PORTFOLIO env (a comma-separated engine list, the same
    // spellings as --engines); --engines overrides the env.
    let env_engines = std::env::var("MC_PORTFOLIO")
        .ok()
        .filter(|v| !v.trim().is_empty());
    let cli_engines = get_value(values, "engines");
    let portfolio_mode =
        flags.contains(&"portfolio".to_string()) || cli_engines.is_some() || env_engines.is_some();
    if portfolio_mode && shards.is_some() {
        return Err(CliError::Usage(
            "--shards applies to a single solve; for the portfolio set MC_SHARDS \
             and include shard-hk in --engines"
                .into(),
        ));
    }
    let sol = if portfolio_mode {
        let roster = match cli_engines.or(env_engines) {
            Some(list) => EngineSpec::parse_list(&list)
                .map_err(|e| CliError::Param(format!("--engines: {e}")))?,
            None => PortfolioConfig::default().engines,
        };
        let mut config = PortfolioConfig::new(roster);
        if let Some(v) = get_value(values, "time-limit") {
            let secs: f64 = v
                .parse()
                .ok()
                .filter(|s: &f64| s.is_finite() && *s > 0.0)
                .ok_or_else(|| {
                    CliError::Param(format!(
                        "--time-limit: expected positive seconds, got {v:?}"
                    ))
                })?;
            config = config.with_time_limit(std::time::Duration::from_secs_f64(secs));
        }
        if flags.contains(&"no-fallback".to_string()) {
            config = config.without_fallback();
        }
        let engine_list: Vec<&str> = config.engines.iter().map(|e| e.name()).collect();
        // Stall watchdog: under --watch-abort the sampler cancels this
        // token, the coordinator force-cancels every engine, and the
        // race unwinds as Cancelled (exit 7 with --no-fallback).
        let watchdog = obs::CancelToken::new();
        if obs_out.watch_abort() {
            config = config.with_watchdog(watchdog.clone());
        }
        obs_out.start_telemetry(
            Some(watchdog),
            &[
                ("tool", Value::S("mcc passive".into())),
                ("n", Value::U(weighted.len() as u64)),
                ("d", Value::U(weighted.dim() as u64)),
                ("engines", Value::S(engine_list.join(","))),
            ],
        )?;
        let out = race(&weighted, &config)?;
        match (out.race.winner, out.race.fallback_used) {
            (Some(w), _) => println!("portfolio winner = {}", w.name()),
            (None, true) => println!("portfolio winner = none (reference fallback)"),
            (None, false) => unreachable!("no winner and no fallback is an error"),
        }
        for (engine, outcome) in &out.race.outcomes {
            let verdict = match outcome {
                EngineOutcome::Won => "won".into(),
                EngineOutcome::Lost => "lost".into(),
                EngineOutcome::Disqualified { reason } => format!("disqualified ({reason})"),
                EngineOutcome::Cancelled => "cancelled".into(),
                EngineOutcome::TimedOut => "timed out".into(),
                EngineOutcome::Panicked { message } => format!("panicked ({message})"),
            };
            println!("  {} {verdict}", engine.name());
        }
        obs_out.finish(
            &[
                ("tool", Value::S("mcc passive".into())),
                ("n", Value::U(weighted.len() as u64)),
                ("d", Value::U(weighted.dim() as u64)),
                ("engines", Value::S(engine_list.join(","))),
            ],
            &[out.report.to_json()],
        )?;
        out.solution
    } else {
        if obs_out.watch_abort() {
            return Err(CliError::Usage(
                "--watch-abort needs a cancellable solve: use --portfolio or a \
                 columnar .mcc input"
                    .into(),
            ));
        }
        obs_out.start_telemetry(
            None,
            &[
                ("tool", Value::S("mcc passive".into())),
                ("n", Value::U(weighted.len() as u64)),
                ("d", Value::U(weighted.dim() as u64)),
            ],
        )?;
        let sol = match shards {
            Some(k) => with_matching_override(MatchingEngine::Shard, Some(k), || {
                PassiveSolver::new()
                    .with_network(network)
                    .try_solve(&weighted)
            })?,
            None => PassiveSolver::new()
                .with_network(network)
                .try_solve(&weighted)?,
        };
        obs_out.finish(
            &[
                ("tool", Value::S("mcc passive".into())),
                ("n", Value::U(weighted.len() as u64)),
                ("d", Value::U(weighted.dim() as u64)),
            ],
            &[],
        )?;
        sol
    };
    println!(
        "n = {}, d = {}, contending = {}",
        weighted.len(),
        weighted.dim(),
        sol.contending
    );
    println!("optimal weighted error = {}", sol.weighted_error);
    println!("classifier anchors = {}", sol.classifier.anchors().len());
    if let Some(out) = get_value(values, "out") {
        write_file(&out, &csv::classifier_to_csv(&sol.classifier))?;
        println!("wrote classifier to {out}");
    }
    Ok(())
}

/// Maps a columnar-format error onto the CLI's exit classes: real
/// filesystem trouble is I/O, everything else (bad magic, truncation,
/// bad labels/weights, non-finite coordinates) is a data error.
fn columnar_err(e: monotone_classification::data::columnar::ColumnarError) -> CliError {
    use monotone_classification::data::columnar::ColumnarError;
    match e {
        ColumnarError::Io(_) => CliError::Io(e.to_string()),
        _ => CliError::Data(e.to_string()),
    }
}

/// The `n = 10⁷` path: streams an `MCC1` file through the matrix-free
/// rank-oracle pipeline. Residency is `O(d·n)` (the rank table, labels,
/// weights, and one column buffer during the build) — no dominator
/// matrix, no row-major coordinate set — so the only outputs are the
/// optimal error and the solve's shape, not a classifier file.
fn cmd_passive_columnar(
    path: &str,
    values: &[(String, String)],
    flags: &[String],
    obs_out: &ObsOutput,
    network: NetworkStrategy,
    shards: Option<usize>,
) -> Result<(), CliError> {
    use monotone_classification::core::passive::solve_passive_scale_cancellable;
    use monotone_classification::data::columnar::ColumnarDataset;
    if get_value(values, "out").is_some() {
        return Err(CliError::Usage(
            "--out: columnar solves report counts, not a classifier \
             (the coordinates are never all resident)"
                .into(),
        ));
    }
    if flags.contains(&"portfolio".to_string()) || get_value(values, "engines").is_some() {
        return Err(CliError::Usage(
            "--portfolio/--engines need row data; columnar files use the streaming solver".into(),
        ));
    }
    if network == NetworkStrategy::Dense {
        return Err(CliError::Usage(
            "--net dense would build the Θ(n²) matrix; columnar files stream the \
             matrix-free path (use auto)"
                .into(),
        ));
    }
    let token = match get_value(values, "time-limit") {
        Some(v) => {
            let secs: f64 = v
                .parse()
                .ok()
                .filter(|s: &f64| s.is_finite() && *s > 0.0)
                .ok_or_else(|| {
                    CliError::Param(format!(
                        "--time-limit: expected positive seconds, got {v:?}"
                    ))
                })?;
            monotone_classification::obs::CancelToken::with_deadline(
                std::time::Duration::from_secs_f64(secs),
            )
        }
        // --watch-abort needs a token the watchdog can actually cancel;
        // never() has no shared state, so mint a live one.
        None if obs_out.watch_abort() => monotone_classification::obs::CancelToken::new(),
        None => monotone_classification::obs::CancelToken::never(),
    };
    let start = std::time::Instant::now();
    let mut ds = ColumnarDataset::open(path).map_err(columnar_err)?;
    let (n, d) = (ds.len(), ds.dim());
    obs_out.start_telemetry(
        Some(token.clone()),
        &[
            ("tool", Value::S("mcc passive".into())),
            ("format", Value::S("columnar".into())),
            ("n", Value::U(n as u64)),
            ("d", Value::U(d as u64)),
        ],
    )?;
    let table = ds.rank_table().map_err(columnar_err)?;
    let labels = ds.read_labels().map_err(columnar_err)?;
    let weights = ds.read_weights().map_err(columnar_err)?;
    drop(ds);
    let load_secs = start.elapsed().as_secs_f64();
    let sol = match shards {
        Some(k) => with_matching_override(MatchingEngine::Shard, Some(k), || {
            solve_passive_scale_cancellable(&table, &labels, &weights, &token)
        })?,
        None => solve_passive_scale_cancellable(&table, &labels, &weights, &token)?,
    };
    let total_secs = start.elapsed().as_secs_f64();
    println!(
        "n = {n}, d = {d}, contending = {} ({} label-0, {} label-1)",
        sol.contending_zeros + sol.contending_ones,
        sol.contending_zeros,
        sol.contending_ones
    );
    println!("optimal weighted error = {}", sol.weighted_error);
    println!(
        "flips: {} zeros -> 1, {} ones -> 0; dominance width = {}",
        sol.flips_to_one, sol.flips_to_zero, sol.width
    );
    println!(
        "network: {} nodes, {} edges",
        sol.network_nodes, sol.network_edges
    );
    println!(
        "load {load_secs:.2}s, total {total_secs:.2}s, peak rss {} MiB",
        sol.report.peak_rss_bytes / (1 << 20)
    );
    obs_out.finish(
        &[
            ("tool", Value::S("mcc passive".into())),
            ("format", Value::S("columnar".into())),
            ("n", Value::U(n as u64)),
            ("d", Value::U(d as u64)),
        ],
        &[sol.report.to_json()],
    )?;
    Ok(())
}

/// Injects the `--flaky-rate` / `--abstain-rate` faults into a
/// ground-truth oracle: a fixed subset permanently abstains, every other
/// call fails transiently at the flaky rate.
struct InjectedOracle {
    flaky: FlakyOracle,
    abstain_mask: AbstainingOracle,
}

impl FallibleOracle for InjectedOracle {
    fn try_probe(&mut self, idx: usize) -> Result<Label, OracleError> {
        if self.abstain_mask.is_unanswerable(idx) {
            return Err(OracleError::Abstain { probe: idx });
        }
        self.flaky.try_probe(idx)
    }

    fn size(&self) -> usize {
        self.flaky.size()
    }

    fn probes_charged(&self) -> usize {
        self.flaky.probes_charged()
    }
}

fn cmd_active(args: &[String]) -> Result<(), CliError> {
    let (pos, values, flags) = parse_flags(
        args,
        &[
            "epsilon",
            "seed",
            "out",
            "flaky-rate",
            "abstain-rate",
            "retry-attempts",
            "fault-seed",
            "metrics-out",
        ],
        &["trace"],
    )?;
    let obs_out = ObsOutput::from_cli(&values, &flags)?;
    cmd_active_impl(&pos, &values, &obs_out).map_err(|e| obs_out.fail(e))
}

fn cmd_active_impl(
    pos: &[String],
    values: &[(String, String)],
    obs_out: &ObsOutput,
) -> Result<(), CliError> {
    let path = pos
        .first()
        .ok_or_else(|| CliError::Usage("active: missing <data.csv>".into()))?;
    let epsilon: f64 = parse_num(values, "epsilon", 0.5)?;
    let seed: u64 = parse_num(values, "seed", 0)?;
    let flaky_rate: f64 = parse_num(values, "flaky-rate", 0.0)?;
    let abstain_rate: f64 = parse_num(values, "abstain-rate", 0.0)?;
    let retry_attempts: u32 = parse_num(values, "retry-attempts", 4)?;
    let fault_seed: u64 = parse_num(values, "fault-seed", 1)?;
    if !(epsilon > 0.0 && epsilon <= 1.0) {
        return Err(CliError::Param(format!(
            "--epsilon must lie in (0, 1], got {epsilon}"
        )));
    }
    for (name, rate) in [("flaky-rate", flaky_rate), ("abstain-rate", abstain_rate)] {
        if !(0.0..=1.0).contains(&rate) {
            return Err(CliError::Param(format!(
                "--{name} must lie in [0, 1], got {rate}"
            )));
        }
    }
    if retry_attempts == 0 {
        return Err(CliError::Param(
            "--retry-attempts must be at least 1".into(),
        ));
    }
    let text = read_file(path)?;
    let data = parse_data(&text)?;
    let solver = ActiveSolver::new(ActiveParams::new(epsilon).with_seed(seed));
    let inject_faults = flaky_rate > 0.0 || abstain_rate > 0.0;
    let sol = if inject_faults {
        let injected = InjectedOracle {
            flaky: FlakyOracle::from_labeled(&data, flaky_rate, fault_seed),
            abstain_mask: AbstainingOracle::from_labeled(&data, abstain_rate, fault_seed ^ 0xA5),
        };
        let policy = RetryPolicy::default()
            .with_max_attempts(retry_attempts)
            .with_seed(fault_seed ^ 0x5A);
        let mut oracle = RetryOracle::new(injected, policy);
        solver.try_solve(data.points(), &mut oracle)?
    } else {
        let mut oracle = InMemoryOracle::from_labeled(&data);
        let mut adapter = InfallibleAdapter::new(&mut oracle);
        solver.try_solve(data.points(), &mut adapter)?
    };
    obs_out.finish(
        &[
            ("tool", Value::S("mcc active".into())),
            ("n", Value::U(data.len() as u64)),
            ("d", Value::U(data.dim() as u64)),
            ("seed", Value::U(seed)),
            ("epsilon", Value::F(epsilon)),
        ],
        &[sol.report.to_json()],
    )?;
    println!(
        "n = {}, d = {}, dominance width = {}",
        data.len(),
        data.dim(),
        sol.width
    );
    println!(
        "probed {} / {} labels ({:.1}%)",
        sol.probes_used,
        data.len(),
        100.0 * sol.probes_used as f64 / data.len().max(1) as f64
    );
    if inject_faults {
        let r = &sol.report;
        println!(
            "oracle report: {} attempts, {} retries, {} abstentions{}",
            r.attempts,
            r.retries,
            r.abstentions,
            if r.breaker_tripped {
                ", circuit breaker tripped"
            } else {
                ""
            }
        );
        if r.degraded {
            println!("result DEGRADED: unanswerable points were dropped from the sample");
        }
    }
    println!(
        "classifier error on probed-truth data = {}",
        sol.classifier.error_on(&data)
    );
    if let Some(out) = get_value(values, "out") {
        write_file(&out, &csv::classifier_to_csv(&sol.classifier))?;
        println!("wrote classifier to {out}");
    }
    Ok(())
}

fn cmd_eval(args: &[String]) -> Result<(), CliError> {
    let (pos, _, _) = parse_flags(args, &[], &[])?;
    let [data_path, classifier_path] = pos.as_slice() else {
        return Err(CliError::Usage(
            "eval: need <data.csv> <classifier.csv>".into(),
        ));
    };
    let data = parse_data(&read_file(data_path)?)?;
    let classifier = csv::classifier_from_csv(&read_file(classifier_path)?, data.dim())
        .map_err(|e| CliError::Data(e.to_string()))?;
    let m = ConfusionMatrix::evaluate(&classifier, &data);
    println!("n = {}, errors = {}", m.total(), m.errors());
    println!(
        "tp = {}, fp = {}, tn = {}, fn = {}",
        m.true_positives, m.false_positives, m.true_negatives, m.false_negatives
    );
    println!(
        "accuracy = {:.4}, precision = {:.4}, recall = {:.4}, f1 = {:.4}",
        m.accuracy(),
        m.precision(),
        m.recall(),
        m.f1()
    );
    Ok(())
}

fn cmd_stats(args: &[String]) -> Result<(), CliError> {
    let (pos, _, _) = parse_flags(args, &[], &[])?;
    let path = pos
        .first()
        .ok_or_else(|| CliError::Usage("stats: missing <data.csv>".into()))?;
    let data = parse_data(&read_file(path)?)?;
    println!("n = {}, d = {}", data.len(), data.dim());
    println!(
        "labels: {} ones, {} zeros",
        data.count_ones(),
        data.len() - data.count_ones()
    );
    let dec = ChainDecomposition::compute(data.points());
    println!("dominance width w = {}", dec.width());
    println!(
        "longest chain (height) = {}",
        AntichainPartition::compute(data.points()).longest_chain_len()
    );
    let con = ContendingPoints::compute(&data.with_unit_weights());
    println!(
        "contending points = {} ({} label-0, {} label-1)",
        con.len(),
        con.zeros.len(),
        con.ones.len()
    );
    let sol = solve_passive(&data.with_unit_weights());
    println!("optimal monotone error k* = {}", sol.weighted_error);
    Ok(())
}

fn cmd_crossval(args: &[String]) -> Result<(), CliError> {
    let (pos, values, _) = parse_flags(args, &["folds", "seed"], &[])?;
    let path = pos
        .first()
        .ok_or_else(|| CliError::Usage("crossval: missing <data.csv>".into()))?;
    let folds: usize = parse_num(&values, "folds", 5)?;
    let seed: u64 = parse_num(&values, "seed", 0)?;
    let data = parse_data(&read_file(path)?)?;
    if folds < 2 {
        return Err(CliError::Param(format!(
            "--folds must be at least 2, got {folds}"
        )));
    }
    if folds > data.len() {
        return Err(CliError::Param(format!(
            "--folds {folds} exceeds the number of points ({})",
            data.len()
        )));
    }
    let results =
        monotone_classification::core::metrics::cross_validate_passive(&data, folds, seed);
    println!("{folds}-fold cross-validation of the exact passive learner:");
    let mut acc = 0.0;
    let mut f1 = 0.0;
    for (i, m) in results.iter().enumerate() {
        println!(
            "  fold {}: accuracy {:.4}, precision {:.4}, recall {:.4}, f1 {:.4}",
            i + 1,
            m.accuracy(),
            m.precision(),
            m.recall(),
            m.f1()
        );
        acc += m.accuracy();
        f1 += m.f1();
    }
    println!(
        "mean: accuracy {:.4}, f1 {:.4}",
        acc / folds as f64,
        f1 / folds as f64
    );
    Ok(())
}

fn cmd_generate(args: &[String]) -> Result<(), CliError> {
    use monotone_classification::data as mcd;
    let (pos, values, _) = parse_flags(args, &["n", "noise", "seed", "dim"], &[])?;
    let [family, out] = pos.as_slice() else {
        return Err(CliError::Usage("generate: need <family> <out.csv>".into()));
    };
    let n: usize = parse_num(&values, "n", 1000)?;
    let noise: f64 = parse_num(&values, "noise", 0.05)?;
    let seed: u64 = parse_num(&values, "seed", 0)?;
    if family == "scale" {
        // Columnar: streamed one column at a time, so any n works
        // without holding the dataset resident.
        let dim: usize = parse_num(&values, "dim", 4)?;
        if dim == 0 || dim > mcd::columnar::MAX_DIM as usize {
            return Err(CliError::Param(format!(
                "--dim must lie in 1 ..= {}, got {dim}",
                mcd::columnar::MAX_DIM
            )));
        }
        let config = mcd::columnar::ScaleConfig::new(n, dim, seed);
        mcd::columnar::write_scale_dataset(out, &config).map_err(columnar_err)?;
        println!("wrote {n} points (d = {dim}) of family scale to {out}");
        return Ok(());
    }
    let data = match family.as_str() {
        "planted" => {
            mcd::planted::planted_sum_concept(&mcd::planted::PlantedConfig::new(n, 2, noise, seed))
                .data
        }
        "entity-matching" => {
            mcd::entity_matching::generate(&mcd::entity_matching::EntityMatchingConfig {
                pairs: n,
                metrics: 3,
                match_rate: 0.3,
                reliability: 1.0 - noise,
                seed,
            })
            .data
        }
        "hard-family" => {
            let even = if n.is_multiple_of(2) { n.max(2) } else { n + 1 };
            mcd::hard_family::hard_family_member(
                even,
                1 + (seed as usize % (even / 2)),
                mcd::hard_family::AnomalyKind::OneOne,
            )
        }
        other => {
            let Some(width) = other
                .strip_prefix("width-")
                .and_then(|w| w.parse::<usize>().ok())
            else {
                return Err(CliError::Usage(format!("unknown family {other:?}")));
            };
            mcd::controlled_width::generate(&mcd::controlled_width::ControlledWidthConfig {
                n,
                width,
                noise,
                seed,
            })
            .data
        }
    };
    let mut text = String::new();
    for (i, p) in data.points().iter().enumerate() {
        let row: Vec<String> = p.iter().map(|c| format!("{c}")).collect();
        text.push_str(&row.join(","));
        text.push(',');
        text.push_str(&data.label(i).to_string());
        text.push('\n');
    }
    write_file(out, &text)?;
    println!(
        "wrote {} points (d = {}) of family {family} to {out}",
        data.len(),
        data.dim()
    );
    Ok(())
}

fn cmd_certify(args: &[String]) -> Result<(), CliError> {
    let (pos, _, flags) = parse_flags(args, &[], &["weighted"])?;
    let path = pos
        .first()
        .ok_or_else(|| CliError::Usage("certify: missing <data.csv>".into()))?;
    let text = read_file(path)?;
    let data = if flags.contains(&"weighted".to_string()) {
        csv::parse_weighted(&text).map_err(|e| CliError::Data(e.to_string()))?
    } else {
        parse_data(&text)?.with_unit_weights()
    };
    let (sol, cert) = monotone_classification::core::passive::certify_passive(&data);
    cert.verify(&data)
        .map_err(|e| CliError::Data(format!("certificate failed audit: {e}")))?;
    println!("optimal weighted error = {}", sol.weighted_error);
    println!(
        "dual certificate: {} inversion charges totalling {}",
        cert.charges.len(),
        cert.charges.iter().map(|c| c.amount).sum::<f64>()
    );
    println!("audit: every charge is a real inversion, no weight double-charged —");
    println!("       no monotone classifier can do better. VERIFIED.");
    Ok(())
}

fn cmd_classify(args: &[String]) -> Result<(), CliError> {
    let (pos, values, _) = parse_flags(args, &["out"], &[])?;
    let [model_path, points_path] = pos.as_slice() else {
        return Err(CliError::Usage(
            "classify: need <model.csv> <points.csv>".into(),
        ));
    };
    let classifier = csv::classifier_from_csv_auto(&read_file(model_path)?)
        .map_err(|e| CliError::Data(e.to_string()))?;
    let points =
        csv::parse_points(&read_file(points_path)?).map_err(|e| CliError::Data(e.to_string()))?;
    if points.dim() != classifier.dim() {
        return Err(CliError::Data(format!(
            "dimension mismatch: model is {}-d, points are {}-d",
            classifier.dim(),
            points.dim()
        )));
    }
    let index = AnchorIndex::build(&classifier);
    let labels = index.classify_set(&points);
    let mut out = String::with_capacity(labels.len() * 2);
    let mut positives = 0usize;
    for label in &labels {
        positives += usize::from(label.is_one());
        out.push(if label.is_one() { '1' } else { '0' });
        out.push('\n');
    }
    match get_value(&values, "out") {
        Some(path) => write_file(&path, &out)?,
        None => print!("{out}"),
    }
    eprintln!(
        "classified {} points through a {}-anchor index: {} positive, {} negative",
        labels.len(),
        index.num_anchors(),
        positives,
        labels.len() - positives
    );
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<(), CliError> {
    let (pos, values, flags) = parse_flags(
        args,
        &[
            "addr",
            "metrics-out",
            "telemetry",
            "sample-ms",
            "stall-window-ms",
        ],
        &["trace", "watch-abort"],
    )?;
    let obs_out = ObsOutput::from_cli(&values, &flags)?;
    cmd_serve_impl(&pos, &values, &obs_out).map_err(|e| obs_out.fail(e))
}

fn cmd_serve_impl(
    pos: &[String],
    values: &[(String, String)],
    obs_out: &ObsOutput,
) -> Result<(), CliError> {
    let model_path = pos
        .first()
        .ok_or_else(|| CliError::Usage("serve: missing <model.csv>".into()))?;
    let classifier = csv::classifier_from_csv_auto(&read_file(model_path)?)
        .map_err(|e| CliError::Data(e.to_string()))?;
    let (dim, anchors) = (classifier.dim(), classifier.anchors().len());
    let config = ServeConfig {
        addr: get_value(values, "addr").unwrap_or_else(|| "127.0.0.1:0".into()),
        model_path: Some(std::path::PathBuf::from(model_path)),
        ..ServeConfig::default()
    };
    let server = serve::spawn(config, classifier)
        .map_err(|e| CliError::Io(format!("cannot bind server: {e}")))?;
    obs_out.start_telemetry(
        None,
        &[
            ("command", Value::S("serve".into())),
            ("model", Value::S(model_path.clone())),
        ],
    )?;
    // The bound address goes to stdout (and is flushed) so scripts can
    // read it even when `--addr` asked for an ephemeral port.
    println!(
        "serving {dim}-d model ({anchors} anchors) on {}",
        server.addr()
    );
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    let stats = server.stats();
    server.join();
    use std::sync::atomic::Ordering::Relaxed;
    println!(
        "drained: {} requests ({} points), {} errors, {} swaps",
        stats.requests.load(Relaxed),
        stats.points.load(Relaxed),
        stats.errors.load(Relaxed),
        stats.swaps.load(Relaxed)
    );
    obs_out.finish(
        &[
            ("command", Value::S("serve".into())),
            ("requests", Value::U(stats.requests.load(Relaxed))),
            ("points", Value::U(stats.points.load(Relaxed))),
        ],
        &[],
    )
}

/// Parses the `--batches 1,16,256` mix (positive sizes, comma-separated).
fn parse_batch_mix(values: &[(String, String)]) -> Result<Vec<usize>, CliError> {
    let spec = get_value(values, "batches").unwrap_or_else(|| "1,16,256,1024".into());
    let mix: Vec<usize> = spec
        .split(',')
        .map(|s| {
            s.trim()
                .parse::<usize>()
                .ok()
                .filter(|&b| b > 0)
                .ok_or_else(|| CliError::Param(format!("bad --batches entry {s:?}")))
        })
        .collect::<Result<_, _>>()?;
    if mix.is_empty() {
        return Err(CliError::Param(
            "--batches must list at least one size".into(),
        ));
    }
    Ok(mix)
}

fn cmd_bench_serve(args: &[String]) -> Result<(), CliError> {
    let (pos, values, _) = parse_flags(
        args,
        &[
            "addr",
            "model",
            "duration",
            "connections",
            "pipeline",
            "batches",
            "dim",
            "anchors",
            "seed",
            "json-out",
        ],
        &[],
    )?;
    if !pos.is_empty() {
        return Err(CliError::Usage(format!(
            "bench-serve: unexpected argument {:?}",
            pos[0]
        )));
    }
    let duration_s: f64 = parse_num(&values, "duration", 5.0)?;
    if !(duration_s > 0.0 && duration_s.is_finite()) {
        return Err(CliError::Param("--duration must be positive".into()));
    }
    let connections: usize = parse_num(&values, "connections", 2)?;
    let pipeline: usize = parse_num(&values, "pipeline", 32)?;
    if connections == 0 || pipeline == 0 {
        return Err(CliError::Param(
            "--connections and --pipeline must be positive".into(),
        ));
    }
    let seed: u64 = parse_num(&values, "seed", 0x5eed)?;
    let batch_mix = parse_batch_mix(&values)?;

    // Target: an external endpoint (`--addr`, with `--dim` describing
    // its model), or a self-hosted server over `--model` / a synthetic
    // antichain of `--anchors` random anchors.
    let external = get_value(&values, "addr");
    let (server, addr, dim, anchors) = match external {
        Some(addr) => {
            for flag in ["model", "anchors"] {
                if get_value(&values, flag).is_some() {
                    return Err(CliError::Usage(format!(
                        "--{flag} only applies when self-hosting (omit --addr)"
                    )));
                }
            }
            let dim: usize = parse_num(&values, "dim", 4)?;
            (None, addr, dim, 0usize)
        }
        None => {
            let classifier = match get_value(&values, "model") {
                Some(path) => {
                    if get_value(&values, "dim").is_some()
                        || get_value(&values, "anchors").is_some()
                    {
                        return Err(CliError::Usage(
                            "--dim/--anchors conflict with --model (the file decides)".into(),
                        ));
                    }
                    csv::classifier_from_csv_auto(&read_file(&path)?)
                        .map_err(|e| CliError::Data(e.to_string()))?
                }
                None => {
                    use rand::{rngs::StdRng, Rng, SeedableRng};
                    let dim: usize = parse_num(&values, "dim", 4)?;
                    let num_anchors: usize = parse_num(&values, "anchors", 1024)?;
                    if dim == 0 || num_anchors == 0 {
                        return Err(CliError::Param(
                            "--dim and --anchors must be positive".into(),
                        ));
                    }
                    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
                    let anchors: Vec<Vec<f64>> = (0..num_anchors)
                        .map(|_| (0..dim).map(|_| rng.gen_range(0.25..1.0)).collect())
                        .collect();
                    MonotoneClassifier::from_anchors(dim, anchors)
                }
            };
            let (dim, anchors) = (classifier.dim(), classifier.anchors().len());
            let server = serve::spawn(ServeConfig::default(), classifier)
                .map_err(|e| CliError::Io(format!("cannot bind server: {e}")))?;
            let addr = server.addr().to_string();
            (Some(server), addr, dim, anchors)
        }
    };

    let self_hosted = server.is_some();
    eprintln!(
        "offering load to {addr}: {connections} connection(s) x pipeline {pipeline}, \
         batches {batch_mix:?}, {duration_s}s"
    );
    let load = serve_load::LoadConfig {
        addr: addr.clone(),
        duration: std::time::Duration::from_secs_f64(duration_s),
        connections,
        pipeline_depth: pipeline,
        batch_mix: batch_mix.clone(),
        dim,
        seed,
    };
    let report = serve_load::run(&load).map_err(|e| CliError::Io(format!("load run: {e}")))?;
    // Server-side view, fetched over the wire so it works for external
    // endpoints too; best-effort (the run already has its own numbers).
    let server_metrics = serve::Client::connect(addr.as_str())
        .ok()
        .and_then(|mut c| c.metrics().ok());

    let lat_ms = |q: f64| report.latency_quantile_us(q).unwrap_or(0) as f64 / 1000.0;
    let max_ms = report.latencies_us.last().copied().unwrap_or(0) as f64 / 1000.0;
    println!(
        "frames: {} ok, {} errors in {:.2}s",
        report.frames,
        report.errors,
        report.elapsed.as_secs_f64()
    );
    println!(
        "throughput: {:.0} frames/s, {:.0} single-point qps",
        report.frames_per_sec(),
        report.points_per_sec()
    );
    println!(
        "latency: p50 {:.3} ms, p90 {:.3} ms, p99 {:.3} ms, max {max_ms:.3} ms",
        lat_ms(0.50),
        lat_ms(0.90),
        lat_ms(0.99)
    );
    if report.errors > 0 {
        return Err(CliError::Data(format!(
            "{} of {} frames were answered with errors",
            report.errors,
            report.frames + report.errors
        )));
    }

    if let Some(path) = get_value(&values, "json-out") {
        use monotone_classification::obs::json::Obj;
        let batches_json = format!(
            "[{}]",
            batch_mix
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(",")
        );
        let config_json = Obj::new()
            .f64("duration_s", duration_s)
            .u64("connections", connections as u64)
            .u64("pipeline_depth", pipeline as u64)
            .raw("batch_mix", &batches_json)
            .u64("dim", dim as u64)
            .u64("anchors", anchors as u64)
            .bool("self_hosted", self_hosted)
            .finish();
        let throughput_json = Obj::new()
            .u64("frames", report.frames)
            .u64("errors", report.errors)
            .u64("points", report.points)
            .f64("elapsed_s", report.elapsed.as_secs_f64())
            .f64("frames_per_sec", report.frames_per_sec())
            .f64("single_point_qps", report.points_per_sec())
            .finish();
        let latency_json = Obj::new()
            .f64("p50", lat_ms(0.50))
            .f64("p90", lat_ms(0.90))
            .f64("p99", lat_ms(0.99))
            .f64("max", max_ms)
            .finish();
        let server_json = match &server_metrics {
            Some(m) => {
                let get = |k: &str| m.get(k).and_then(serve::JsonValue::as_u64).unwrap_or(0);
                Obj::new()
                    .u64("generation", get("generation"))
                    .u64("requests", get("requests"))
                    .u64("points", get("points"))
                    .u64("swaps", get("swaps"))
                    .finish()
            }
            None => "null".into(),
        };
        let record = Obj::new()
            .str("bench", "serve")
            .raw("meta", &monotone_classification::bench::bench_meta_json())
            .raw("config", &config_json)
            .raw("throughput", &throughput_json)
            .raw("latency_ms", &latency_json)
            .raw("server", &server_json)
            .finish();
        write_file(&path, &format!("{record}\n"))?;
        eprintln!("wrote {path}");
    }

    if let Some(server) = server {
        server.shutdown_and_join();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_parsing() {
        let args: Vec<String> = ["a.csv", "--epsilon", "0.5", "--weighted"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let (pos, values, flags) = parse_flags(&args, &["epsilon"], &["weighted"]).unwrap();
        assert_eq!(pos, vec!["a.csv"]);
        assert_eq!(get_value(&values, "epsilon").as_deref(), Some("0.5"));
        assert_eq!(flags, vec!["weighted"]);
    }

    #[test]
    fn unknown_flag_rejected() {
        let args = vec!["--bogus".to_string()];
        assert!(parse_flags(&args, &[], &[]).is_err());
    }

    #[test]
    fn missing_value_rejected() {
        let args = vec!["--epsilon".to_string()];
        assert!(parse_flags(&args, &["epsilon"], &[]).is_err());
    }

    #[test]
    fn unknown_command_errors() {
        assert!(run(&["bogus".to_string()]).is_err());
    }

    #[test]
    fn error_classes_have_distinct_exit_codes() {
        let errors = [
            CliError::Usage(String::new()),
            CliError::Io(String::new()),
            CliError::Data(String::new()),
            CliError::Param(String::new()),
            CliError::Oracle(String::new()),
            CliError::Timeout(String::new()),
            CliError::Budget(String::new()),
        ];
        let mut codes: Vec<u8> = errors.iter().map(|e| e.exit_code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), errors.len(), "exit codes must be distinct");
        assert!(codes.iter().all(|&c| c != 0 && c != 1));
    }

    #[test]
    fn mc_errors_map_to_expected_classes() {
        let e: CliError = McError::OracleSizeMismatch {
            oracle: 3,
            points: 5,
        }
        .into();
        assert_eq!(e.exit_code(), 6);
        let e: CliError = McError::invalid_parameter("ε must lie in (0, 1], got 2").into();
        assert_eq!(e.exit_code(), 5);
        let e: CliError = McError::Timeout.into();
        assert_eq!(e.exit_code(), 7);
        let e: CliError = McError::Cancelled.into();
        assert_eq!(e.exit_code(), 7);
        let e: CliError = McError::Budget {
            points: 100_000,
            required_bytes: 1_250_200_000,
            budget_bytes: 1_000_000,
        }
        .into();
        assert_eq!(e.exit_code(), 8);
        assert!(e.message().contains("MC_MATRIX_BUDGET_BYTES"));
    }
}
