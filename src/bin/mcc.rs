//! `mcc` — monotone classification on CSV files.
//!
//! ```text
//! mcc passive <data.csv> [--weighted] [--out classifier.csv]
//! mcc active  <data.csv> [--epsilon E] [--seed S] [--out classifier.csv]
//! mcc eval    <data.csv> <classifier.csv>
//! mcc stats   <data.csv>
//! ```
//!
//! Data format: one row per point, `d` numeric feature columns followed
//! by a 0/1 label column (plus a positive weight column with
//! `--weighted`). A non-numeric header row is skipped. Classifiers are
//! stored as anchor rows (`d` columns; `h(x) = 1` iff `x` dominates an
//! anchor).

use monotone_classification::chains::{AntichainPartition, ChainDecomposition};
use monotone_classification::core::metrics::ConfusionMatrix;
use monotone_classification::core::passive::{solve_passive, ContendingPoints};
use monotone_classification::core::{ActiveParams, ActiveSolver, InMemoryOracle};
use monotone_classification::data::csv;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  mcc passive  <data.csv> [--weighted] [--out classifier.csv]
  mcc active   <data.csv> [--epsilon E] [--seed S] [--out classifier.csv]
  mcc eval     <data.csv> <classifier.csv>
  mcc stats    <data.csv>
  mcc crossval <data.csv> [--folds K] [--seed S]
  mcc certify  <data.csv> [--weighted]
  mcc generate <family> <out.csv> [--n N] [--noise P] [--seed S]
               families: planted | entity-matching | hard-family | width-W";

fn run(args: &[String]) -> Result<(), String> {
    let command = args.first().ok_or("missing command")?;
    match command.as_str() {
        "passive" => cmd_passive(&args[1..]),
        "active" => cmd_active(&args[1..]),
        "eval" => cmd_eval(&args[1..]),
        "stats" => cmd_stats(&args[1..]),
        "crossval" => cmd_crossval(&args[1..]),
        "certify" => cmd_certify(&args[1..]),
        "generate" => cmd_generate(&args[1..]),
        other => Err(format!("unknown command {other:?}")),
    }
}

/// Extracts `--flag value` pairs and bare flags, returning positionals.
#[allow(clippy::type_complexity)] // (positionals, --flag values, bare flags)
fn parse_flags(
    args: &[String],
    valued: &[&str],
    bare: &[&str],
) -> Result<(Vec<String>, Vec<(String, String)>, Vec<String>), String> {
    let mut positional = Vec::new();
    let mut values = Vec::new();
    let mut flags = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if let Some(name) = a.strip_prefix("--") {
            if bare.contains(&name) {
                flags.push(name.to_string());
            } else if valued.contains(&name) {
                i += 1;
                let v = args
                    .get(i)
                    .ok_or_else(|| format!("--{name} requires a value"))?;
                values.push((name.to_string(), v.clone()));
            } else {
                return Err(format!("unknown flag --{name}"));
            }
        } else {
            positional.push(a.clone());
        }
        i += 1;
    }
    Ok((positional, values, flags))
}

fn get_value(values: &[(String, String)], name: &str) -> Option<String> {
    values
        .iter()
        .rev()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v.clone())
}

fn read_file(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
}

fn cmd_passive(args: &[String]) -> Result<(), String> {
    let (pos, values, flags) = parse_flags(args, &["out"], &["weighted"])?;
    let path = pos.first().ok_or("passive: missing <data.csv>")?;
    let text = read_file(path)?;
    let weighted = if flags.contains(&"weighted".to_string()) {
        csv::parse_weighted(&text).map_err(|e| e.to_string())?
    } else {
        csv::parse_labeled(&text)
            .map_err(|e| e.to_string())?
            .with_unit_weights()
    };
    let sol = solve_passive(&weighted);
    println!(
        "n = {}, d = {}, contending = {}",
        weighted.len(),
        weighted.dim(),
        sol.contending
    );
    println!("optimal weighted error = {}", sol.weighted_error);
    println!("classifier anchors = {}", sol.classifier.anchors().len());
    if let Some(out) = get_value(&values, "out") {
        std::fs::write(&out, csv::classifier_to_csv(&sol.classifier))
            .map_err(|e| format!("cannot write {out}: {e}"))?;
        println!("wrote classifier to {out}");
    }
    Ok(())
}

fn cmd_active(args: &[String]) -> Result<(), String> {
    let (pos, values, _) = parse_flags(args, &["epsilon", "seed", "out"], &[])?;
    let path = pos.first().ok_or("active: missing <data.csv>")?;
    let epsilon: f64 = get_value(&values, "epsilon")
        .map(|v| v.parse().map_err(|_| format!("bad --epsilon {v:?}")))
        .transpose()?
        .unwrap_or(0.5);
    let seed: u64 = get_value(&values, "seed")
        .map(|v| v.parse().map_err(|_| format!("bad --seed {v:?}")))
        .transpose()?
        .unwrap_or(0);
    if !(epsilon > 0.0 && epsilon <= 1.0) {
        return Err(format!("--epsilon must lie in (0, 1], got {epsilon}"));
    }
    let text = read_file(path)?;
    let data = csv::parse_labeled(&text).map_err(|e| e.to_string())?;
    let mut oracle = InMemoryOracle::from_labeled(&data);
    let solver = ActiveSolver::new(ActiveParams::new(epsilon).with_seed(seed));
    let sol = solver.solve(data.points(), &mut oracle);
    println!(
        "n = {}, d = {}, dominance width = {}",
        data.len(),
        data.dim(),
        sol.width
    );
    println!(
        "probed {} / {} labels ({:.1}%)",
        sol.probes_used,
        data.len(),
        100.0 * sol.probes_used as f64 / data.len().max(1) as f64
    );
    println!(
        "classifier error on probed-truth data = {}",
        sol.classifier.error_on(&data)
    );
    if let Some(out) = get_value(&values, "out") {
        std::fs::write(&out, csv::classifier_to_csv(&sol.classifier))
            .map_err(|e| format!("cannot write {out}: {e}"))?;
        println!("wrote classifier to {out}");
    }
    Ok(())
}

fn cmd_eval(args: &[String]) -> Result<(), String> {
    let (pos, _, _) = parse_flags(args, &[], &[])?;
    let [data_path, classifier_path] = pos.as_slice() else {
        return Err("eval: need <data.csv> <classifier.csv>".into());
    };
    let data = csv::parse_labeled(&read_file(data_path)?).map_err(|e| e.to_string())?;
    let classifier = csv::classifier_from_csv(&read_file(classifier_path)?, data.dim())
        .map_err(|e| e.to_string())?;
    let m = ConfusionMatrix::evaluate(&classifier, &data);
    println!("n = {}, errors = {}", m.total(), m.errors());
    println!(
        "tp = {}, fp = {}, tn = {}, fn = {}",
        m.true_positives, m.false_positives, m.true_negatives, m.false_negatives
    );
    println!(
        "accuracy = {:.4}, precision = {:.4}, recall = {:.4}, f1 = {:.4}",
        m.accuracy(),
        m.precision(),
        m.recall(),
        m.f1()
    );
    Ok(())
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let (pos, _, _) = parse_flags(args, &[], &[])?;
    let path = pos.first().ok_or("stats: missing <data.csv>")?;
    let data = csv::parse_labeled(&read_file(path)?).map_err(|e| e.to_string())?;
    println!("n = {}, d = {}", data.len(), data.dim());
    println!(
        "labels: {} ones, {} zeros",
        data.count_ones(),
        data.len() - data.count_ones()
    );
    let dec = ChainDecomposition::compute(data.points());
    println!("dominance width w = {}", dec.width());
    println!(
        "longest chain (height) = {}",
        AntichainPartition::compute(data.points()).longest_chain_len()
    );
    let con = ContendingPoints::compute(&data.with_unit_weights());
    println!(
        "contending points = {} ({} label-0, {} label-1)",
        con.len(),
        con.zeros.len(),
        con.ones.len()
    );
    let sol = solve_passive(&data.with_unit_weights());
    println!("optimal monotone error k* = {}", sol.weighted_error);
    Ok(())
}

fn cmd_crossval(args: &[String]) -> Result<(), String> {
    let (pos, values, _) = parse_flags(args, &["folds", "seed"], &[])?;
    let path = pos.first().ok_or("crossval: missing <data.csv>")?;
    let folds: usize = get_value(&values, "folds")
        .map(|v| v.parse().map_err(|_| format!("bad --folds {v:?}")))
        .transpose()?
        .unwrap_or(5);
    let seed: u64 = get_value(&values, "seed")
        .map(|v| v.parse().map_err(|_| format!("bad --seed {v:?}")))
        .transpose()?
        .unwrap_or(0);
    let data = csv::parse_labeled(&read_file(path)?).map_err(|e| e.to_string())?;
    if folds < 2 {
        return Err(format!("--folds must be at least 2, got {folds}"));
    }
    if folds > data.len() {
        return Err(format!(
            "--folds {folds} exceeds the number of points ({})",
            data.len()
        ));
    }
    let results =
        monotone_classification::core::metrics::cross_validate_passive(&data, folds, seed);
    println!("{folds}-fold cross-validation of the exact passive learner:");
    let mut acc = 0.0;
    let mut f1 = 0.0;
    for (i, m) in results.iter().enumerate() {
        println!(
            "  fold {}: accuracy {:.4}, precision {:.4}, recall {:.4}, f1 {:.4}",
            i + 1,
            m.accuracy(),
            m.precision(),
            m.recall(),
            m.f1()
        );
        acc += m.accuracy();
        f1 += m.f1();
    }
    println!(
        "mean: accuracy {:.4}, f1 {:.4}",
        acc / folds as f64,
        f1 / folds as f64
    );
    Ok(())
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    use monotone_classification::data as mcd;
    let (pos, values, _) = parse_flags(args, &["n", "noise", "seed"], &[])?;
    let [family, out] = pos.as_slice() else {
        return Err("generate: need <family> <out.csv>".into());
    };
    let n: usize = get_value(&values, "n")
        .map(|v| v.parse().map_err(|_| format!("bad --n {v:?}")))
        .transpose()?
        .unwrap_or(1000);
    let noise: f64 = get_value(&values, "noise")
        .map(|v| v.parse().map_err(|_| format!("bad --noise {v:?}")))
        .transpose()?
        .unwrap_or(0.05);
    let seed: u64 = get_value(&values, "seed")
        .map(|v| v.parse().map_err(|_| format!("bad --seed {v:?}")))
        .transpose()?
        .unwrap_or(0);
    let data = match family.as_str() {
        "planted" => {
            mcd::planted::planted_sum_concept(&mcd::planted::PlantedConfig::new(n, 2, noise, seed))
                .data
        }
        "entity-matching" => {
            mcd::entity_matching::generate(&mcd::entity_matching::EntityMatchingConfig {
                pairs: n,
                metrics: 3,
                match_rate: 0.3,
                reliability: 1.0 - noise,
                seed,
            })
            .data
        }
        "hard-family" => {
            let even = if n.is_multiple_of(2) { n.max(2) } else { n + 1 };
            mcd::hard_family::hard_family_member(
                even,
                1 + (seed as usize % (even / 2)),
                mcd::hard_family::AnomalyKind::OneOne,
            )
        }
        other => {
            let Some(width) = other
                .strip_prefix("width-")
                .and_then(|w| w.parse::<usize>().ok())
            else {
                return Err(format!("unknown family {other:?}"));
            };
            mcd::controlled_width::generate(&mcd::controlled_width::ControlledWidthConfig {
                n,
                width,
                noise,
                seed,
            })
            .data
        }
    };
    let mut text = String::new();
    for (i, p) in data.points().iter().enumerate() {
        let row: Vec<String> = p.iter().map(|c| format!("{c}")).collect();
        text.push_str(&row.join(","));
        text.push(',');
        text.push_str(&data.label(i).to_string());
        text.push('\n');
    }
    std::fs::write(out, text).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!(
        "wrote {} points (d = {}) of family {family} to {out}",
        data.len(),
        data.dim()
    );
    Ok(())
}

fn cmd_certify(args: &[String]) -> Result<(), String> {
    let (pos, _, flags) = parse_flags(args, &[], &["weighted"])?;
    let path = pos.first().ok_or("certify: missing <data.csv>")?;
    let text = read_file(path)?;
    let data = if flags.contains(&"weighted".to_string()) {
        csv::parse_weighted(&text).map_err(|e| e.to_string())?
    } else {
        csv::parse_labeled(&text)
            .map_err(|e| e.to_string())?
            .with_unit_weights()
    };
    let (sol, cert) = monotone_classification::core::passive::certify_passive(&data);
    cert.verify(&data)
        .map_err(|e| format!("certificate failed audit: {e}"))?;
    println!("optimal weighted error = {}", sol.weighted_error);
    println!(
        "dual certificate: {} inversion charges totalling {}",
        cert.charges.len(),
        cert.charges.iter().map(|c| c.amount).sum::<f64>()
    );
    println!("audit: every charge is a real inversion, no weight double-charged —");
    println!("       no monotone classifier can do better. VERIFIED.");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_parsing() {
        let args: Vec<String> = ["a.csv", "--epsilon", "0.5", "--weighted"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let (pos, values, flags) = parse_flags(&args, &["epsilon"], &["weighted"]).unwrap();
        assert_eq!(pos, vec!["a.csv"]);
        assert_eq!(get_value(&values, "epsilon").as_deref(), Some("0.5"));
        assert_eq!(flags, vec!["weighted"]);
    }

    #[test]
    fn unknown_flag_rejected() {
        let args = vec!["--bogus".to_string()];
        assert!(parse_flags(&args, &[], &[]).is_err());
    }

    #[test]
    fn missing_value_rejected() {
        let args = vec!["--epsilon".to_string()];
        assert!(parse_flags(&args, &["epsilon"], &[]).is_err());
    }

    #[test]
    fn unknown_command_errors() {
        assert!(run(&["bogus".to_string()]).is_err());
    }
}
