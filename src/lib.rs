//! # monotone-classification
//!
//! A Rust implementation of *"New Algorithms for Monotone Classification"*
//! (Tao & Wang, PODS 2021): passive weighted monotone classification in
//! polynomial time via min-cut (Theorem 4), and `(1+ε)`-approximate
//! *active* classification probing `O((w/ε²)·log(n/w)·log n)` labels
//! (Theorems 2–3), where `w` is the dominance width of the input.
//!
//! The umbrella crate re-exports each subsystem as a module and the most
//! common types at the top level.
//!
//! ## Passive classification (all labels visible)
//!
//! ```
//! use monotone_classification::{Label, WeightedSet, solve_passive};
//!
//! let mut data = WeightedSet::empty(2);
//! data.push(&[0.9, 0.8], Label::One, 1.0);   // consistent
//! data.push(&[0.1, 0.2], Label::Zero, 1.0);  // consistent
//! data.push(&[0.8, 0.9], Label::Zero, 5.0);  // heavy inversion vs next
//! data.push(&[0.2, 0.3], Label::One, 1.0);   // cheap inversion
//! let sol = solve_passive(&data);
//! assert_eq!(sol.weighted_error, 1.0); // flip the cheap point
//! ```
//!
//! ## Active classification (pay-per-probe labels)
//!
//! ```
//! use monotone_classification::{ActiveSolver, InMemoryOracle, Label, LabeledSet};
//!
//! let mut data = LabeledSet::empty(1);
//! for i in 0..100 {
//!     data.push(&[i as f64], Label::from_bool(i >= 40));
//! }
//! let mut oracle = InMemoryOracle::from_labeled(&data);
//! let sol = ActiveSolver::with_epsilon(0.5).solve(data.points(), &mut oracle);
//! assert_eq!(sol.classifier.error_on(&data), 0); // k* = 0 ⇒ exact (whp)
//! assert!(sol.probes_used <= 100);
//! ```

pub use mc_bench as bench;
pub use mc_chains as chains;
pub use mc_core as core;
pub use mc_data as data;
pub use mc_flow as flow;
pub use mc_geom as geom;
pub use mc_matching as matching;
pub use mc_obs as obs;
pub use mc_portfolio as portfolio;
pub use mc_serve as serve;

pub use mc_core::passive::solve_passive;
pub use mc_core::{
    ActiveParams, ActiveSolver, AnchorIndex, ConfusionMatrix, InMemoryOracle, LabelOracle,
    MonotoneClassifier, PassiveSolver,
};
pub use mc_geom::{Label, LabeledSet, Point, PointSet, WeightedSet};

// Fault-tolerance layer: typed errors, fallible oracles, degradation
// reports (see `mc_core::oracle` and the "Failure model" section of
// docs/ALGORITHMS.md).
pub use mc_core::active::{solve_with_budget, try_solve_with_budget};
pub use mc_core::{
    AbstainingOracle, FallibleOracle, FlakyOracle, InfallibleAdapter, McError, MeteredOracle,
    OracleError, OracleStats, RetryOracle, RetryPolicy, SolveReport,
};
pub use mc_geom::GeomError;

// Engine racing: fault-isolated portfolio solves with cooperative
// cancellation, deadlines, and certificate refereeing (see
// `mc_portfolio` and docs/ALGORITHMS.md §11).
pub use mc_portfolio::{EngineSpec, PortfolioConfig, PortfolioOutcome};
