//! Offline shim for the subset of the `rand` 0.8 API this workspace uses.
//!
//! The build environment has no network access, so the real crates.io
//! `rand` cannot be fetched. This vendored stand-in implements the exact
//! surface the workspace consumes — `rngs::StdRng`, `SeedableRng::
//! seed_from_u64`, `Rng::{gen_range, gen_bool, gen}` over integer and
//! float ranges, and `seq::SliceRandom::shuffle` — with a deterministic
//! xoshiro256++ generator, so all seeded behaviour in the repo stays
//! reproducible. It makes no attempt at the full `rand` feature set
//! (distributions, thread-local RNGs, fill, etc.).

pub mod rngs;
pub mod seq;

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of `next_u64`).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators (only the `seed_from_u64` entry point is needed).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, expanding it with
    /// SplitMix64 exactly like upstream `rand_core` does.
    fn seed_from_u64(state: u64) -> Self;
}

/// A value a range can be sampled over. Implemented for the integer and
/// float ranges the workspace uses.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty => $unsigned:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $unsigned).wrapping_sub(self.start as $unsigned);
                // Lemire's multiply-shift; the tiny modulo bias of the
                // plain multiply is irrelevant for test workloads.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as $unsigned;
                self.start.wrapping_add(hi as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as $unsigned).wrapping_sub(start as $unsigned);
                if span == <$unsigned>::MAX {
                    return rng.next_u64() as $t;
                }
                let hi = ((rng.next_u64() as u128 * (span as u128 + 1)) >> 64) as $unsigned;
                start.wrapping_add(hi as $t)
            }
        }
    )*};
}

int_sample_range! {
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize,
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
}

/// A uniform draw in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = unit_f64(rng) as $t;
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let u = unit_f64(rng) as $t;
                start + (end - start) * u
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value of the "standard" distribution for the type.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl Standard for u64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// User-facing sampling helpers, blanket-implemented for every RNG.
pub trait Rng: RngCore {
    /// Uniform draw from an integer or float range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p = {p} outside [0, 1]");
        unit_f64(self) < p
    }

    /// Standard-distribution draw (`bool`, `u32`, `u64`, or `f64` in
    /// `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f64..5.0);
            assert!((-2.0..5.0).contains(&f));
            let i = rng.gen_range(-50i32..50);
            assert!((-50..50).contains(&i));
            let inc = rng.gen_range(0u64..=3);
            assert!(inc <= 3);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_permutes() {
        use crate::seq::SliceRandom;
        let mut v: Vec<usize> = (0..50).collect();
        let orig = v.clone();
        v.shuffle(&mut StdRng::seed_from_u64(5));
        assert_ne!(v, orig, "50 elements should not shuffle to identity");
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig, "shuffle must be a permutation");
    }

    #[test]
    fn all_values_reachable_in_small_range() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
