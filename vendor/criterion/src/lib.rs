//! Offline shim for the subset of the `criterion` API this workspace
//! uses.
//!
//! The build environment has no network access, so the real crates.io
//! `criterion` cannot be fetched. This stand-in keeps every bench target
//! compiling and produces simple wall-clock timings (median of a small
//! number of timed batches) instead of criterion's full statistical
//! machinery — good enough to compare hot paths locally, not a
//! measurement-grade harness.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A `name/parameter` id.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    batches: u32,
    last: Option<Duration>,
}

impl Bencher {
    /// Runs `f` repeatedly and records the median batch time.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // One warm-up call, then `batches` timed batches of one call
        // each (the workloads in this repo are all well above
        // microsecond scale, so per-call timing is fine).
        black_box(f());
        let mut times: Vec<Duration> = (0..self.batches)
            .map(|_| {
                let start = Instant::now();
                black_box(f());
                start.elapsed()
            })
            .collect();
        times.sort_unstable();
        self.last = Some(times[times.len() / 2]);
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed batches per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` against a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut bencher = Bencher {
            batches: self.sample_size.min(10) as u32,
            last: None,
        };
        f(&mut bencher, input);
        self.report(&id.id, bencher.last);
        self
    }

    /// Benchmarks a closure with no external input.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut bencher = Bencher {
            batches: self.sample_size.min(10) as u32,
            last: None,
        };
        f(&mut bencher);
        self.report(&id.id, bencher.last);
        self
    }

    fn report(&self, id: &str, time: Option<Duration>) {
        match time {
            Some(t) => println!("{}/{id}: median {t:?}", self.name),
            None => println!("{}/{id}: no measurement", self.name),
        }
    }

    /// Ends the group (reports are printed eagerly; this is a no-op kept
    /// for API compatibility).
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Accepts and ignores CLI arguments (`--bench`, filters, …).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Benchmarks a closure outside any group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        self.benchmark_group(name.to_string())
            .bench_function(BenchmarkId::from(name), f);
        self
    }
}

/// Bundles benchmark functions into a runner, like the real macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_with_input(BenchmarkId::from_parameter(7), &5u64, |b, n| {
            b.iter(|| {
                runs += 1;
                n * 2
            })
        });
        group.finish();
        assert!(runs >= 4, "warm-up plus timed batches must run");
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("dinic", 8).id, "dinic/8");
        assert_eq!(BenchmarkId::from_parameter(42).id, "42");
    }
}
