//! The deterministic RNG behind the shim's strategies.

/// xoshiro256++ seeded from the case number via SplitMix64; every test
/// case regenerates the same inputs on every run.
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// RNG for the given case number.
    pub fn for_case(case: u64) -> Self {
        let mut state = case ^ 0xA076_1D64_78BD_642F;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut state);
        }
        Self { s }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
