//! Offline shim for the subset of the `proptest` API this workspace uses.
//!
//! The build environment has no network access, so the real crates.io
//! `proptest` cannot be fetched. This vendored stand-in supports the
//! surface the workspace's property tests consume: the [`proptest!`]
//! macro, the [`Strategy`] trait with `prop_map`/`prop_flat_map`,
//! range/tuple/[`Just`] strategies, `prop::collection::vec`,
//! `prop::bool::ANY`, `prop::option::weighted`, the `prop_assert*`
//! macros, and [`ProptestConfig::with_cases`].
//!
//! Differences from the real crate, acceptable for this repository:
//! inputs are generated from a deterministic per-case RNG (fully
//! reproducible runs), and failing cases are reported without shrinking.

pub mod test_runner;

use test_runner::TestRng;

/// Runner configuration (only `cases` is consulted).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A generator of test inputs.
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a second strategy from each generated value and draws from
    /// it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty => $unsigned:ty),* $(,)?) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as $unsigned).wrapping_sub(self.start as $unsigned);
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as $unsigned;
                self.start.wrapping_add(hi as $t)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                let span = (end as $unsigned).wrapping_sub(start as $unsigned);
                if span == <$unsigned>::MAX {
                    return rng.next_u64() as $t;
                }
                let hi = ((rng.next_u64() as u128 * (span as u128 + 1)) >> 64) as $unsigned;
                start.wrapping_add(hi as $t)
            }
        }
    )*};
}

int_range_strategy! {
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize,
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
}

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

pub mod bool {
    //! Boolean strategies.
    use super::{Strategy, TestRng};

    /// Strategy yielding uniformly random booleans.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// The canonical boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    //! Collection strategies.
    use super::{Strategy, TestRng};

    /// Inclusive-of-low, exclusive-of-high length range for [`vec()`].
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(len: usize) -> Self {
            Self {
                lo: len,
                hi: len + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec`s whose elements are drawn from `element`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A `Vec` strategy with the given element strategy and size range.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.size.hi - self.size.lo <= 1 {
                self.size.lo
            } else {
                self.size.lo + (rng.next_u64() % (self.size.hi - self.size.lo) as u64) as usize
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies.
    use super::{Strategy, TestRng};

    /// Strategy yielding `Some` with the given probability.
    #[derive(Clone, Debug)]
    pub struct Weighted<S> {
        probability: f64,
        inner: S,
    }

    /// `Some(inner)` with probability `probability`, else `None`.
    pub fn weighted<S: Strategy>(probability: f64, inner: S) -> Weighted<S> {
        assert!(
            (0.0..=1.0).contains(&probability),
            "probability {probability} outside [0, 1]"
        );
        Weighted { probability, inner }
    }

    impl<S: Strategy> Strategy for Weighted<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.unit_f64() < self.probability {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

pub mod num {
    //! Numeric strategy helpers (ranges implement [`Strategy`](crate::Strategy) directly).
}

pub mod prelude {
    //! Everything a property-test file needs.
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, ProptestConfig, Strategy};

    pub mod prop {
        //! The `prop::` namespace of the real crate.
        pub use crate::bool;
        pub use crate::collection;
        pub use crate::num;
        pub use crate::option;
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that checks the body against `cases` generated
/// inputs (deterministically seeded per case; no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng =
                        $crate::test_runner::TestRng::for_case(__case as u64);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property (panics on failure — this shim
/// does not shrink).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vecs_generate_in_bounds() {
        let mut rng = crate::test_runner::TestRng::for_case(3);
        let strat = prop::collection::vec((0usize..7, prop::bool::ANY), 2..9);
        for _ in 0..200 {
            let v = Strategy::generate(&strat, &mut rng);
            assert!((2..9).contains(&v.len()));
            assert!(v.iter().all(|(x, _)| *x < 7));
        }
    }

    #[test]
    fn flat_map_links_strategies() {
        let mut rng = crate::test_runner::TestRng::for_case(4);
        let strat = (1usize..5).prop_flat_map(|n| (Just(n), prop::collection::vec(0usize..n, n)));
        for _ in 0..100 {
            let (n, v) = Strategy::generate(&strat, &mut rng);
            assert_eq!(v.len(), n);
            assert!(v.iter().all(|&x| x < n));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_round_trip(x in 0i32..100, flag in prop::bool::ANY) {
            prop_assert!((0..100).contains(&x));
            prop_assert_eq!(flag, flag);
        }
    }

    proptest! {
        #[test]
        fn macro_default_config(opt in prop::option::weighted(0.5, 0u32..10)) {
            if let Some(v) = opt {
                prop_assert!(v < 10);
            }
        }
    }
}
