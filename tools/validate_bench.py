#!/usr/bin/env python3
"""Validates the schema of every committed BENCH_*.json record.

CI runs this from the repo root after the bench-smoke steps regenerate
the records, so a bench that silently drops a section (or emits broken
JSON) fails the build rather than rotting in the repo. Pass a directory
to check records somewhere else.

Validation is closed-world: every record must carry a `meta` provenance
block (`git_sha`, `threads`), all sections its bench tag requires, and
nothing else — an unknown top-level section fails the build instead of
riding along unchecked until it rots.
"""
import glob
import json
import sys

# Top-level sections each record must carry, keyed by its `bench` tag.
REQUIRED = {
    "dominance": ["config", "timings_ms", "speedup", "equivalence"],
    "flow": ["config", "sizes", "timings_ms", "edges", "speedup", "equivalence"],
    "matching": ["config", "timings_ms", "speedup", "stats", "equivalence", "sharded"],
    "scale": ["config", "kernel", "parity", "telemetry", "sizes", "sizes_sharded"],
    "serve": ["config", "throughput", "latency_ms", "server"],
}

# Sections every record carries regardless of bench tag.
COMMON = ["bench", "meta"]

# Provenance keys `meta` must carry (bench_meta_json in mc-bench).
META_REQUIRED = ["git_sha", "threads"]

SCALE_TELEMETRY = [
    "n",
    "reps",
    "interval_ms",
    "plain_solve_ms",
    "sampled_solve_ms",
    "overhead_frac",
    "samples",
]


def fail(msg):
    print(f"FAIL: {msg}")
    sys.exit(1)


def check_meta(path, doc):
    meta = doc.get("meta")
    if not isinstance(meta, dict):
        fail(f"{path}: missing or non-object `meta` provenance section")
    missing = [k for k in META_REQUIRED if k not in meta]
    if missing:
        fail(f"{path}: meta section missing {missing}")
    if not isinstance(meta["git_sha"], str) or not meta["git_sha"]:
        fail(f"{path}: meta.git_sha must be a non-empty string")
    if not isinstance(meta["threads"], int) or meta["threads"] < 1:
        fail(f"{path}: meta.threads must be a positive integer")


def main():
    root = sys.argv[1] if len(sys.argv) > 1 else "."
    paths = sorted(glob.glob(f"{root}/BENCH_*.json"))
    if not paths:
        fail(f"no BENCH_*.json files found under {root}")
    for path in paths:
        with open(path) as f:
            try:
                doc = json.load(f)
            except json.JSONDecodeError as e:
                fail(f"{path}: not valid JSON: {e}")
        name = doc.get("bench")
        expected = path.split("BENCH_")[-1].removesuffix(".json")
        if name != expected:
            fail(f"{path}: bench tag {name!r} does not match filename ({expected!r})")
        if name not in REQUIRED:
            fail(f"{path}: unknown bench {name!r} — add its schema to {__file__}")
        check_meta(path, doc)
        missing = [k for k in REQUIRED[name] if k not in doc]
        if missing:
            fail(f"{path}: missing sections {missing}")
        allowed = set(REQUIRED[name]) | set(COMMON)
        unknown = sorted(k for k in doc if k not in allowed)
        if unknown:
            fail(
                f"{path}: unknown top-level sections {unknown} — "
                f"declare them in REQUIRED[{name!r}] or drop them"
            )
        if name == "scale":
            t = doc["telemetry"]
            missing = [k for k in SCALE_TELEMETRY if k not in t]
            if missing:
                fail(f"{path}: telemetry section missing {missing}")
            if not (t["plain_solve_ms"] > 0 and t["sampled_solve_ms"] > 0):
                fail(f"{path}: non-positive telemetry timings: {t}")
            if t["samples"] < 2:
                fail(f"{path}: sampler recorded only {t['samples']} samples")
            # The committed record must honor the documented budget: the
            # 100 ms sampler costs < 2% end-to-end (docs/OBSERVABILITY.md).
            if t["overhead_frac"] >= 0.02:
                fail(
                    f"{path}: telemetry overhead {t['overhead_frac']:.2%} "
                    "breaches the 2% budget"
                )
        if name == "serve":
            t = doc["throughput"]
            for key in ("frames", "errors", "points", "elapsed_s",
                        "frames_per_sec", "single_point_qps"):
                if key not in t:
                    fail(f"{path}: throughput section missing {key!r}")
            if not t["single_point_qps"] > 0:
                fail(f"{path}: non-positive qps: {t}")
            if t["errors"] != 0:
                fail(f"{path}: load run recorded {t['errors']} error frames")
            lat = doc["latency_ms"]
            for key in ("p50", "p90", "p99", "max"):
                if key not in lat:
                    fail(f"{path}: latency_ms section missing {key!r}")
            if not (0 < lat["p50"] <= lat["p99"] <= lat["max"]):
                fail(f"{path}: latency quantiles out of order: {lat}")
            server = doc["server"]
            if server is not None:
                # Server-side counters must cover everything the load
                # generator got acknowledged (>=: the probe connection
                # and any other client also count server-side).
                if server.get("points", 0) < t["points"]:
                    fail(
                        f"{path}: server acknowledged {server.get('points')} points "
                        f"but the generator recorded {t['points']}"
                    )
        if name == "matching":
            sharded = doc["sharded"]
            if not isinstance(sharded, dict):
                fail(f"{path}: `sharded` must be an object with a `sizes` array")
            for key in ("workload", "dim", "shards", "reps", "sizes"):
                if key not in sharded:
                    fail(f"{path}: sharded section missing {key!r}")
            rows = sharded["sizes"]
            if not isinstance(rows, list) or not rows:
                fail(f"{path}: sharded.sizes must be a non-empty array of per-size rows")
            for row in rows:
                for key in (
                    "n",
                    "width",
                    "sequential_1t_ms",
                    "curve",
                    "speedup_8t_vs_sequential",
                    "width_identical",
                ):
                    if key not in row:
                        fail(f"{path}: sharded row missing {key!r}: {row}")
                if row["width_identical"] is not True:
                    fail(f"{path}: sharded row n={row['n']} is not width-identical")
                for pt in row["curve"]:
                    for key in ("requested_threads", "effective_workers", "sharded_ms"):
                        if key not in pt:
                            fail(f"{path}: sharded curve point missing {key!r}: {pt}")
        print(f"{path}: OK ({name})")
    print(f"{len(paths)} bench records valid")


if __name__ == "__main__":
    main()
