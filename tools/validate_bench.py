#!/usr/bin/env python3
"""Validates the schema of every committed BENCH_*.json record.

CI runs this from the repo root after the bench-smoke steps regenerate
the records, so a bench that silently drops a section (or emits broken
JSON) fails the build rather than rotting in the repo. Pass a directory
to check records somewhere else.
"""
import glob
import json
import sys

# Top-level sections each record must carry, keyed by its `bench` tag.
REQUIRED = {
    "dominance": ["config", "timings_ms", "speedup", "equivalence"],
    "flow": ["config", "sizes", "timings_ms", "edges", "speedup", "equivalence"],
    "matching": ["config", "timings_ms", "speedup", "stats", "equivalence"],
    "scale": ["config", "kernel", "parity", "telemetry", "sizes"],
}

SCALE_TELEMETRY = [
    "n",
    "reps",
    "interval_ms",
    "plain_solve_ms",
    "sampled_solve_ms",
    "overhead_frac",
    "samples",
]


def fail(msg):
    print(f"FAIL: {msg}")
    sys.exit(1)


def main():
    root = sys.argv[1] if len(sys.argv) > 1 else "."
    paths = sorted(glob.glob(f"{root}/BENCH_*.json"))
    if not paths:
        fail(f"no BENCH_*.json files found under {root}")
    for path in paths:
        with open(path) as f:
            try:
                doc = json.load(f)
            except json.JSONDecodeError as e:
                fail(f"{path}: not valid JSON: {e}")
        name = doc.get("bench")
        expected = path.split("BENCH_")[-1].removesuffix(".json")
        if name != expected:
            fail(f"{path}: bench tag {name!r} does not match filename ({expected!r})")
        if name not in REQUIRED:
            fail(f"{path}: unknown bench {name!r} — add its schema to {__file__}")
        missing = [k for k in REQUIRED[name] if k not in doc]
        if missing:
            fail(f"{path}: missing sections {missing}")
        if name == "scale":
            t = doc["telemetry"]
            missing = [k for k in SCALE_TELEMETRY if k not in t]
            if missing:
                fail(f"{path}: telemetry section missing {missing}")
            if not (t["plain_solve_ms"] > 0 and t["sampled_solve_ms"] > 0):
                fail(f"{path}: non-positive telemetry timings: {t}")
            if t["samples"] < 2:
                fail(f"{path}: sampler recorded only {t['samples']} samples")
            # The committed record must honor the documented budget: the
            # 100 ms sampler costs < 2% end-to-end (docs/OBSERVABILITY.md).
            if t["overhead_frac"] >= 0.02:
                fail(
                    f"{path}: telemetry overhead {t['overhead_frac']:.2%} "
                    "breaches the 2% budget"
                )
        print(f"{path}: OK ({name})")
    print(f"{len(paths)} bench records valid")


if __name__ == "__main__":
    main()
